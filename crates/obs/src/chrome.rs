//! Chrome trace-event JSON export (loadable in `ui.perfetto.dev`).

use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent, Track};

/// Escapes a string for embedding in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends the `"args"` object for an event.
fn args_into(out: &mut String, kind: &EventKind) {
    match kind {
        EventKind::Retire { pc, inst } => {
            let _ = write!(out, "{{\"pc\":{pc},\"inst\":\"");
            escape_into(out, inst);
            out.push_str("\"}");
        }
        EventKind::UncachedStallRun { cycles } | EventKind::MembarStallRun { cycles } => {
            let _ = write!(out, "{{\"cycles\":{cycles}}}");
        }
        EventKind::Squash { count, reason } => {
            let _ = write!(out, "{{\"count\":{count},\"reason\":\"{reason}\"}}");
        }
        EventKind::CacheMiss { addr, level } => {
            let _ = write!(out, "{{\"addr\":\"{addr:#x}\",\"level\":\"{level}\"}}");
        }
        EventKind::CsbStore {
            pid,
            addr,
            width,
            count,
            reset,
        } => {
            let _ = write!(
                out,
                "{{\"pid\":{pid},\"addr\":\"{addr:#x}\",\"width\":{width},\
                 \"count\":{count},\"reset\":{reset}}}"
            );
        }
        EventKind::CsbBusy { addr } => {
            let _ = write!(out, "{{\"addr\":\"{addr:#x}\"}}");
        }
        EventKind::CsbFlushAttempt {
            pid,
            addr,
            expected,
        } => {
            let _ = write!(
                out,
                "{{\"pid\":{pid},\"addr\":\"{addr:#x}\",\"expected\":{expected}}}"
            );
        }
        EventKind::CsbFlushOutcome { success, payload } => {
            let _ = write!(out, "{{\"success\":{success},\"payload\":{payload}}}");
        }
        EventKind::UncachedPush {
            addr,
            width,
            coalesced,
        } => {
            let _ = write!(
                out,
                "{{\"addr\":\"{addr:#x}\",\"width\":{width},\"coalesced\":{coalesced}}}"
            );
        }
        EventKind::UncachedLoad { addr, width } => {
            let _ = write!(out, "{{\"addr\":\"{addr:#x}\",\"width\":{width}}}");
        }
        EventKind::UncachedFull { addr } => {
            let _ = write!(out, "{{\"addr\":\"{addr:#x}\"}}");
        }
        EventKind::BusTxn {
            addr,
            size,
            payload,
            tag,
            ..
        } => {
            let _ = write!(
                out,
                "{{\"addr\":\"{addr:#x}\",\"size\":{size},\"payload\":{payload},\"tag\":{tag}}}"
            );
        }
        EventKind::ForeignTxn { size } => {
            let _ = write!(out, "{{\"size\":{size}}}");
        }
        EventKind::BusFault { addr, size } => {
            let _ = write!(out, "{{\"addr\":\"{addr:#x}\",\"size\":{size}}}");
        }
        EventKind::DeviceNack { addr } | EventKind::FlushDisturb { addr } => {
            let _ = write!(out, "{{\"addr\":\"{addr:#x}\"}}");
        }
        EventKind::NicMessage {
            sender,
            seq,
            len,
            arrival,
        } => {
            let _ = write!(
                out,
                "{{\"sender\":{sender},\"seq\":{seq},\"len\":{len},\"arrival\":{arrival}}}"
            );
        }
        EventKind::NicTornFrame { offset } => {
            let _ = write!(out, "{{\"offset\":\"{offset:#x}\"}}");
        }
    }
}

/// Renders an event stream as Chrome trace-event JSON.
///
/// One trace microsecond per CPU cycle; one named thread track per
/// [`Track`] (the five agents), all under pid 1. Zero-duration events
/// export as thread-scoped instants (`"ph":"i"`), the rest as complete
/// spans (`"ph":"X"`). Events are ordered by start cycle (ties keep
/// emission order), so equal inputs produce byte-identical output.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.cycle);

    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
    };
    for track in Track::ALL {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            track.tid(),
            track.name()
        );
    }
    for e in sorted {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
            e.kind.name(),
            e.track.tid(),
            e.cycle
        );
        if e.dur == 0 {
            out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
        } else {
            let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", e.dur);
        }
        out.push_str(",\"args\":");
        args_into(&mut out, &e.kind);
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 12,
                dur: 54,
                track: Track::Bus,
                kind: EventKind::BusTxn {
                    addr: 0x2000_0000,
                    size: 64,
                    payload: 64,
                    write: true,
                    tag: 7,
                },
            },
            TraceEvent {
                cycle: 3,
                dur: 0,
                track: Track::Cpu,
                kind: EventKind::Retire {
                    pc: 2,
                    inst: "std r1, [dev]".into(),
                },
            },
            TraceEvent {
                cycle: 12,
                dur: 0,
                track: Track::Csb,
                kind: EventKind::CsbFlushOutcome {
                    success: true,
                    payload: 64,
                },
            },
        ]
    }

    #[test]
    fn export_is_valid_json_with_all_tracks() {
        let json = chrome_trace_json(&sample());
        let value = serde_json::parse_value(&json).expect("export must parse as JSON");
        let text = value.render_compact();
        for track in Track::ALL {
            assert!(text.contains(track.name()), "missing track {:?}", track);
        }
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn events_sort_by_cycle_with_stable_ties() {
        let json = chrome_trace_json(&sample());
        let retire = json.find("\"retire\"").unwrap();
        let bus = json.find("\"bus.write\"").unwrap();
        let flush = json.find("\"csb.flush.done\"").unwrap();
        assert!(retire < bus, "cycle 3 before cycle 12");
        assert!(bus < flush, "equal cycles keep emission order");
    }

    #[test]
    fn empty_stream_still_exports_metadata() {
        let json = chrome_trace_json(&[]);
        assert!(serde_json::parse_value(&json).is_ok());
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn strings_are_escaped() {
        let events = vec![TraceEvent {
            cycle: 0,
            dur: 0,
            track: Track::Cpu,
            kind: EventKind::Retire {
                pc: 0,
                inst: "say \"hi\"\\".into(),
            },
        }];
        let json = chrome_trace_json(&events);
        assert!(json.contains("say \\\"hi\\\"\\\\"));
        assert!(serde_json::parse_value(&json).is_ok());
    }
}
