//! The zero-cost-when-disabled trace sink handle.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::event::{EventKind, TraceEvent, Track};

#[derive(Debug, Default)]
struct Shared {
    /// The current CPU cycle, advanced once per cycle by the simulator.
    now: Cell<u64>,
    events: RefCell<Vec<TraceEvent>>,
}

/// A cloneable handle into one shared stream of cycle-stamped events.
///
/// Every simulation component holds a `TraceSink`; the default handle is
/// *disabled* and every call on it is a single branch. The simulator
/// creates one enabled sink, installs clones into the components, and
/// advances the shared clock with [`TraceSink::set_now`] once per CPU
/// cycle, so components never thread `now` through their call chains.
///
/// Components clocked in bus cycles hold a [`TraceSink::scaled`] handle:
/// their [`TraceSink::emit_span`] timestamps are multiplied onto the
/// shared CPU-cycle timeline at emission.
///
/// Handles are `Rc`-based and deliberately not `Send`: a simulator and
/// all its components live on one worker thread, and the parallel
/// experiment runner extracts plain `String`/snapshot artifacts before
/// results cross threads.
#[derive(Debug, Clone)]
pub struct TraceSink {
    shared: Option<Rc<Shared>>,
    /// CPU cycles per caller cycle (1 for CPU-clocked components).
    scale: u64,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::disabled()
    }
}

impl TraceSink {
    /// A disabled handle: every emit is a no-op costing one branch.
    pub fn disabled() -> Self {
        TraceSink {
            shared: None,
            scale: 1,
        }
    }

    /// A new, enabled, empty sink at cycle 0.
    pub fn enabled() -> Self {
        TraceSink {
            shared: Some(Rc::new(Shared::default())),
            scale: 1,
        }
    }

    /// `true` if events emitted through this handle are recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// A handle onto the same stream whose `emit_span` timestamps are in
    /// units of `scale` CPU cycles (e.g. the CPU:bus frequency ratio for
    /// the bus). Scales compose multiplicatively.
    #[must_use]
    pub fn scaled(&self, scale: u64) -> Self {
        TraceSink {
            shared: self.shared.clone(),
            scale: self.scale * scale.max(1),
        }
    }

    /// Advances the shared clock to `cycle` (CPU cycles, unscaled).
    /// Called once per cycle by the simulator tick loop.
    #[inline]
    pub fn set_now(&self, cycle: u64) {
        if let Some(s) = &self.shared {
            s.now.set(cycle);
        }
    }

    /// The shared clock's current CPU cycle (0 when disabled).
    #[inline]
    pub fn now(&self) -> u64 {
        self.shared.as_ref().map_or(0, |s| s.now.get())
    }

    /// Records an instant event at the shared clock's current cycle.
    #[inline]
    pub fn emit(&self, track: Track, kind: EventKind) {
        if let Some(s) = &self.shared {
            s.events.borrow_mut().push(TraceEvent {
                cycle: s.now.get(),
                dur: 0,
                track,
                kind,
            });
        }
    }

    /// Records an instant event at the current cycle, building the payload
    /// only when the sink is enabled (use when the payload allocates, e.g.
    /// disassembled instruction text).
    #[inline]
    pub fn emit_with(&self, track: Track, kind: impl FnOnce() -> EventKind) {
        if let Some(s) = &self.shared {
            s.events.borrow_mut().push(TraceEvent {
                cycle: s.now.get(),
                dur: 0,
                track,
                kind: kind(),
            });
        }
    }

    /// Records an instant event at an explicit CPU cycle, bypassing the
    /// shared clock. The fast-forward walk uses this to synthesize the
    /// per-cycle events the naive loop would have emitted inside a jump
    /// without repeatedly resetting the shared clock.
    #[inline]
    pub fn emit_at(&self, cycle: u64, track: Track, kind: EventKind) {
        if let Some(s) = &self.shared {
            s.events.borrow_mut().push(TraceEvent {
                cycle,
                dur: 0,
                track,
                kind,
            });
        }
    }

    /// Records a span of `dur` caller cycles starting at caller cycle
    /// `cycle`; both are rescaled onto the CPU-cycle timeline.
    #[inline]
    pub fn emit_span(&self, cycle: u64, dur: u64, track: Track, kind: EventKind) {
        if let Some(s) = &self.shared {
            s.events.borrow_mut().push(TraceEvent {
                cycle: cycle * self.scale,
                dur: dur * self.scale,
                track,
                kind,
            });
        }
    }

    /// Number of events recorded so far (0 when disabled).
    pub fn len(&self) -> usize {
        self.shared.as_ref().map_or(0, |s| s.events.borrow().len())
    }

    /// `true` if no events have been recorded (or the sink is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the recorded event stream, in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.shared
            .as_ref()
            .map_or_else(Vec::new, |s| s.events.borrow().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        sink.set_now(5);
        sink.emit(
            Track::Cpu,
            EventKind::Squash {
                count: 1,
                reason: "mispredict",
            },
        );
        sink.emit_span(0, 9, Track::Bus, EventKind::ForeignTxn { size: 8 });
        assert!(!sink.is_enabled());
        assert!(sink.is_empty());
        assert!(sink.snapshot().is_empty());
        assert_eq!(sink.now(), 0);
    }

    #[test]
    fn clones_share_one_stream_and_clock() {
        let sink = TraceSink::enabled();
        let other = sink.clone();
        sink.set_now(7);
        other.emit(Track::Csb, EventKind::CsbBusy { addr: 0x10 });
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.snapshot()[0].cycle, 7);
        assert_eq!(other.now(), 7);
    }

    #[test]
    fn scaled_handle_rescales_spans_only() {
        let sink = TraceSink::enabled();
        let bus = sink.scaled(6);
        bus.emit_span(2, 9, Track::Bus, EventKind::ForeignTxn { size: 64 });
        sink.set_now(3);
        bus.emit(Track::Bus, EventKind::ForeignTxn { size: 8 });
        let ev = sink.snapshot();
        assert_eq!((ev[0].cycle, ev[0].dur), (12, 54));
        // `emit` uses the shared CPU-cycle clock directly, unscaled.
        assert_eq!((ev[1].cycle, ev[1].dur), (3, 0));
        // Scales compose; a zero scale is clamped to 1.
        assert_eq!(bus.scaled(2).scaled(0).scale, 12);
    }

    #[test]
    fn emit_at_stamps_explicit_unscaled_cycles() {
        let sink = TraceSink::enabled();
        sink.set_now(3);
        // The explicit cycle wins over the shared clock, and a scaled
        // handle does not rescale it (it is already in CPU cycles).
        sink.scaled(6)
            .emit_at(17, Track::Csb, EventKind::CsbBusy { addr: 0x40 });
        let ev = sink.snapshot();
        assert_eq!((ev[0].cycle, ev[0].dur), (17, 0));
        TraceSink::disabled().emit_at(17, Track::Csb, EventKind::CsbBusy { addr: 0x40 });
    }

    #[test]
    fn emit_with_builds_lazily() {
        let disabled = TraceSink::disabled();
        disabled.emit_with(Track::Cpu, || panic!("must not build when disabled"));
        let enabled = TraceSink::enabled();
        enabled.emit_with(Track::Cpu, || EventKind::Retire {
            pc: 4,
            inst: "halt".into(),
        });
        assert_eq!(enabled.len(), 1);
    }
}
