//! The cross-run perf ledger: one JSONL record per executed sweep point,
//! plus the diff machinery that turns two ledgers into a regression
//! verdict.
//!
//! Every bench binary can append its per-point results (`--ledger
//! <path>`) as one [`LedgerRecord`] JSON object per line. Records carry
//! the config hash, seed, scheme, simulated cycles, wall time, the key
//! throughput/latency stats, and the p50/p95/p99 conditional-flush retry
//! latency — enough to track the repository's perf trajectory across
//! commits instead of a single `BENCH_*.json` snapshot. [`diff_ledgers`]
//! compares two ledgers point-by-point and flags cycle-count or
//! flush-latency regressions beyond a relative threshold; CI fails the
//! build when the checked-in baseline regresses.
//!
//! Parsing is hand-rolled over the vendored [`serde_json::parse_value`]
//! tree (the vendored `Deserialize` derive is a compile-compatibility
//! stub), which also keeps the ledger tolerant of unknown extra fields
//! from newer writers.

use serde::value::{Number, Value};
use serde::Serialize;

/// One executed sweep point, as appended to a JSONL ledger.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LedgerRecord {
    /// Bench binary that produced the point (`fig4`, `faults`, …).
    pub bench: String,
    /// Runner point label, e.g. `"4a/256B/CSB"`.
    pub label: String,
    /// Scheme leg of the label (`CSB`, `none`, `64B`, …), for filtering.
    pub scheme: String,
    /// FNV-1a hash of the point's full configuration rendering.
    pub config_hash: u64,
    /// Fault-schedule seed (0 for deterministic points).
    pub seed: u64,
    /// Simulated CPU cycles the point ran.
    pub cycles: u64,
    /// Wall-clock microseconds the point took.
    pub wall_us: u64,
    /// The measured figure value (bandwidth MB/s or latency cycles).
    pub value: f64,
    /// Conditional flushes that committed.
    pub flush_successes: u64,
    /// Bus transactions issued.
    pub bus_transactions: u64,
    /// Median conditional-flush retry latency (cycles).
    pub flush_p50: u64,
    /// 95th-percentile flush retry latency (cycles).
    pub flush_p95: u64,
    /// 99th-percentile flush retry latency (cycles).
    pub flush_p99: u64,
    /// 99.9th-percentile flush retry latency (cycles). Absent from
    /// ledgers written before the field existed; parsed as 0 then.
    pub flush_p999: u64,
}

impl LedgerRecord {
    /// The identity a record is matched on across ledgers.
    pub fn key(&self) -> String {
        format!("{}::{}#{}", self.bench, self.label, self.seed)
    }

    /// Serializes the record as one JSONL line (no trailing newline).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the derived serializer for this plain
    /// struct is infallible.
    pub fn to_jsonl_line(&self) -> String {
        serde_json::to_string(self).expect("ledger record serializes")
    }
}

/// FNV-1a over an arbitrary configuration rendering — the ledger's
/// `config_hash`. Stable across runs and platforms for identical input.
pub fn hash_config(repr: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in repr.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(obj: &[(String, Value)], key: &str) -> Result<u64, String> {
    match get(obj, key) {
        Some(Value::Number(Number::U(n))) => u64::try_from(*n).map_err(|_| overflow(key)),
        Some(Value::Number(Number::I(n))) => u64::try_from(*n).map_err(|_| overflow(key)),
        Some(Value::Number(Number::F(f))) if *f >= 0.0 && f.fract() == 0.0 => Ok(*f as u64),
        Some(_) => Err(format!("field `{key}` is not an unsigned integer")),
        None => Err(format!("field `{key}` missing")),
    }
}

fn get_f64(obj: &[(String, Value)], key: &str) -> Result<f64, String> {
    match get(obj, key) {
        Some(Value::Number(Number::U(n))) => Ok(*n as f64),
        Some(Value::Number(Number::I(n))) => Ok(*n as f64),
        Some(Value::Number(Number::F(f))) => Ok(*f),
        Some(_) => Err(format!("field `{key}` is not a number")),
        None => Err(format!("field `{key}` missing")),
    }
}

fn get_str(obj: &[(String, Value)], key: &str) -> Result<String, String> {
    match get(obj, key) {
        Some(Value::String(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field `{key}` is not a string")),
        None => Err(format!("field `{key}` missing")),
    }
}

fn overflow(key: &str) -> String {
    format!("field `{key}` out of u64 range")
}

/// Parses one ledger record from its JSONL line.
///
/// # Errors
///
/// Returns a description of the first malformed or missing field.
pub fn parse_record(line: &str) -> Result<LedgerRecord, String> {
    let value = serde_json::parse_value(line).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let Value::Object(obj) = value else {
        return Err("ledger line is not a JSON object".into());
    };
    Ok(LedgerRecord {
        bench: get_str(&obj, "bench")?,
        label: get_str(&obj, "label")?,
        scheme: get_str(&obj, "scheme")?,
        config_hash: get_u64(&obj, "config_hash")?,
        seed: get_u64(&obj, "seed")?,
        cycles: get_u64(&obj, "cycles")?,
        wall_us: get_u64(&obj, "wall_us")?,
        value: get_f64(&obj, "value")?,
        flush_successes: get_u64(&obj, "flush_successes")?,
        bus_transactions: get_u64(&obj, "bus_transactions")?,
        flush_p50: get_u64(&obj, "flush_p50")?,
        flush_p95: get_u64(&obj, "flush_p95")?,
        flush_p99: get_u64(&obj, "flush_p99")?,
        // Tolerant: older ledgers predate the deep-tail gauge.
        flush_p999: get_u64(&obj, "flush_p999").unwrap_or(0),
    })
}

/// Parses a whole JSONL ledger, skipping blank lines.
///
/// # Errors
///
/// Returns the line number and parse error of the first bad line.
pub fn parse_ledger(text: &str) -> Result<Vec<LedgerRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_record(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// One flagged metric movement between two ledgers.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LedgerRegression {
    /// The record key ([`LedgerRecord::key`]) the regression is on.
    pub key: String,
    /// Which metric regressed (`cycles`, `flush_p95`, …).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current / baseline` (∞ when the baseline is 0).
    pub ratio: f64,
}

/// The verdict of comparing a current ledger against a baseline.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LedgerDiff {
    /// Point keys matched and compared.
    pub compared: usize,
    /// Baseline keys absent from the current ledger (coverage loss).
    pub missing: Vec<String>,
    /// Current keys absent from the baseline (new points; informational).
    pub added: Vec<String>,
    /// Metric movements beyond the threshold, worst ratio first.
    pub regressions: Vec<LedgerRegression>,
}

impl LedgerDiff {
    /// `true` if the current ledger regresses or loses coverage — the
    /// condition CI fails the build on.
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty() || !self.missing.is_empty()
    }

    /// Plain-text rendering for the `ledger` bin's stderr output.
    pub fn render(&self) -> String {
        let mut out = format!("ledger-diff: {} point(s) compared\n", self.compared);
        for key in &self.missing {
            out.push_str(&format!("  MISSING  {key} (in baseline, not in current)\n"));
        }
        for key in &self.added {
            out.push_str(&format!("  new      {key}\n"));
        }
        for r in &self.regressions {
            out.push_str(&format!(
                "  REGRESSED {}: {} {} -> {} ({:.2}x)\n",
                r.key, r.metric, r.baseline, r.current, r.ratio
            ));
        }
        if !self.is_regression() {
            out.push_str("  OK: no regressions\n");
        }
        out
    }
}

/// Compares `current` against `baseline`, flagging any matched point
/// whose simulated cycle count or flush-latency quantile grew by more
/// than `threshold` (relative; `0.10` = 10%). Latecomer duplicates of a
/// key within one ledger win (a ledger is append-only: the newest record
/// for a point is its current truth).
pub fn diff_ledgers(
    baseline: &[LedgerRecord],
    current: &[LedgerRecord],
    threshold: f64,
) -> LedgerDiff {
    // Last write wins within each ledger.
    let dedup = |records: &[LedgerRecord]| -> Vec<(String, LedgerRecord)> {
        let mut out: Vec<(String, LedgerRecord)> = Vec::new();
        for r in records {
            let key = r.key();
            match out.iter_mut().find(|(k, _)| *k == key) {
                Some((_, slot)) => *slot = r.clone(),
                None => out.push((key, r.clone())),
            }
        }
        out
    };
    let base = dedup(baseline);
    let cur = dedup(current);

    let mut diff = LedgerDiff::default();
    for (key, b) in &base {
        let Some((_, c)) = cur.iter().find(|(k, _)| k == key) else {
            diff.missing.push(key.clone());
            continue;
        };
        diff.compared += 1;
        let gauges: [(&str, u64, u64); 5] = [
            ("cycles", b.cycles, c.cycles),
            ("flush_p50", b.flush_p50, c.flush_p50),
            ("flush_p95", b.flush_p95, c.flush_p95),
            ("flush_p99", b.flush_p99, c.flush_p99),
            ("flush_p999", b.flush_p999, c.flush_p999),
        ];
        for (metric, bv, cv) in gauges {
            let regressed = if bv == 0 {
                cv > 0
            } else {
                cv as f64 > bv as f64 * (1.0 + threshold)
            };
            if regressed {
                diff.regressions.push(LedgerRegression {
                    key: key.clone(),
                    metric: metric.to_string(),
                    baseline: bv as f64,
                    current: cv as f64,
                    ratio: if bv == 0 {
                        f64::INFINITY
                    } else {
                        cv as f64 / bv as f64
                    },
                });
            }
        }
    }
    for (key, _) in &cur {
        if !base.iter().any(|(k, _)| k == key) {
            diff.added.push(key.clone());
        }
    }
    diff.regressions.sort_by(|a, b| {
        b.ratio
            .partial_cmp(&a.ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, cycles: u64, p95: u64) -> LedgerRecord {
        LedgerRecord {
            bench: "fig4".into(),
            label: label.into(),
            scheme: "CSB".into(),
            config_hash: hash_config("cfg"),
            seed: 0,
            cycles,
            wall_us: 120,
            value: 88.5,
            flush_successes: 4,
            bus_transactions: 4,
            flush_p50: 1,
            flush_p95: p95,
            flush_p99: p95,
            flush_p999: p95,
        }
    }

    #[test]
    fn record_roundtrips_through_jsonl() {
        let r = record("4a/256B/CSB", 9001, 15);
        let parsed = parse_record(&r.to_jsonl_line()).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn old_ledger_lines_without_p999_parse_as_zero() {
        let mut r = record("4a/256B/CSB", 9001, 15);
        let line = r.to_jsonl_line().replace(",\"flush_p999\":15", "");
        assert!(!line.contains("flush_p999"), "{line}");
        let parsed = parse_record(&line).expect("old line parses");
        r.flush_p999 = 0;
        assert_eq!(parsed, r);
    }

    #[test]
    fn ledger_parses_multiple_lines_and_reports_bad_ones() {
        let a = record("a", 1, 1);
        let b = record("b", 2, 2);
        let text = format!("{}\n\n{}\n", a.to_jsonl_line(), b.to_jsonl_line());
        let parsed = parse_ledger(&text).expect("parses");
        assert_eq!(parsed, vec![a, b]);
        let err = parse_ledger("{\"bench\": 3}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn diff_flags_cycle_and_latency_regressions() {
        let base = vec![record("a", 1000, 10), record("b", 1000, 10)];
        let cur = vec![
            record("a", 1050, 10), // +5%: within threshold
            record("b", 1200, 40), // +20% cycles, 4x p95/p99
        ];
        let diff = diff_ledgers(&base, &cur, 0.10);
        assert_eq!(diff.compared, 2);
        assert!(diff.is_regression());
        let metrics: Vec<&str> = diff.regressions.iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"cycles"));
        assert!(metrics.contains(&"flush_p95"));
        assert!(metrics.contains(&"flush_p99"));
        assert!(metrics.contains(&"flush_p999"));
        assert!(
            !diff.regressions.iter().any(|r| r.key.contains("::a#")),
            "point a is within threshold"
        );
        // Worst ratio first.
        assert!(diff.regressions[0].ratio >= diff.regressions[1].ratio);
    }

    #[test]
    fn diff_tracks_missing_added_and_last_write_wins() {
        let base = vec![record("a", 1000, 10), record("gone", 5, 5)];
        let cur = vec![
            record("a", 9999, 10), // superseded by the next line
            record("a", 1000, 10),
            record("new", 7, 7),
        ];
        let diff = diff_ledgers(&base, &cur, 0.10);
        assert_eq!(diff.missing, vec!["fig4::gone#0"]);
        assert_eq!(diff.added, vec!["fig4::new#0"]);
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
        assert!(diff.is_regression(), "missing coverage is a failure");
        let clean = diff_ledgers(&base[..1], &cur[1..2], 0.10);
        assert!(!clean.is_regression());
        assert!(clean.render().contains("OK"));
    }

    #[test]
    fn zero_baseline_only_regresses_when_nonzero_appears() {
        let base = vec![record("a", 1000, 0)];
        let mut grown = record("a", 1000, 3);
        grown.flush_p50 = 0;
        let diff = diff_ledgers(&base, &[grown], 0.10);
        assert_eq!(diff.regressions.len(), 3, "{:?}", diff.regressions);
        assert!(diff.regressions.iter().all(|r| r.ratio.is_infinite()));
        let same = diff_ledgers(&base, &[record("a", 1000, 0)], 0.10);
        assert!(!same.is_regression());
    }
}
