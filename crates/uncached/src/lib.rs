//! The uncached buffer, hardware combining baselines, and the conditional
//! store buffer (CSB).
//!
//! This crate implements the paper's primary contribution and the baseline
//! mechanisms it is compared against:
//!
//! * [`UncachedBuffer`] — the FIFO buffer between the processor and the
//!   system interface that holds uncached loads and stores. Configured with
//!   a combining block size it models the spectrum of hardware-transparent
//!   write combining found in 1990s processors: 8 B (non-combining, every
//!   store is its own bus transaction), 16 B (PowerPC 620-style pairing), up
//!   to a full cache line (MIPS R10000 uncached-accelerated mode). Combining
//!   is opportunistic: a store coalesces into a waiting entry only while the
//!   bus keeps that entry waiting, and the resulting transactions must be
//!   naturally aligned powers of two — which is why hardware combining
//!   cannot guarantee a single burst.
//! * [`ConditionalStoreBuffer`] — the paper's CSB (§3.2): one cache line of
//!   data plus the issuing process's ID, the line-aligned target address,
//!   and a hit counter. Software accumulates *combining stores* and commits
//!   them with a *conditional flush* that atomically emits the line as a
//!   single burst — or fails, returning 0, if a competing process disturbed
//!   the buffer. This provides lock-free, exactly-once device access.
//! * [`ByteMask`] / [`decompose`] — the natural-alignment burst decomposition
//!   shared by both mechanisms.
//!
//! # Examples
//!
//! An uninterrupted CSB sequence commits atomically; an interleaved store
//! from another process makes the flush fail:
//!
//! ```
//! use csb_isa::Addr;
//! use csb_uncached::{ConditionalStoreBuffer, CsbConfig, FlushOutcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut csb = ConditionalStoreBuffer::new(CsbConfig::new(64))?;
//! let line = Addr::new(0x2000_0000);
//!
//! for i in 0..8u64 {
//!     csb.store(1, line.offset(8 * i as i64), &i.to_le_bytes())?;
//! }
//! assert_eq!(csb.conditional_flush(1, line, 8), FlushOutcome::Success);
//! let burst = csb.transaction_accepted(); // the bus takes the line
//! assert_eq!(burst.txn.size, 64);
//!
//! // Second attempt by PID 1, but PID 2 sneaks a store in.
//! csb.store(1, line, &[0xff; 8])?;
//! csb.store(2, line.offset(8), &[0xee; 8])?; // clears the buffer, count=1
//! assert_eq!(csb.conditional_flush(1, line, 2), FlushOutcome::Fail);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

mod buffer;
mod csb;
mod mask;

pub use buffer::{
    CombineRule, PushOutcome, UncachedBuffer, UncachedConfig, UncachedConfigError, UncachedStats,
};
pub use csb::{
    ConditionalStoreBuffer, CsbConfig, CsbConfigError, CsbError, CsbStats, FlushOutcome,
    StoreOutcome,
};
pub use mask::{decompose, decompose_into, ByteMask, Chunk, MAX_BLOCK};

/// Fixed-capacity inline payload staging: up to [`MAX_BLOCK`] bytes held
/// directly in the value, no heap allocation. This is the data half of
/// every transaction the uncached buffer and the CSB prepare — sized by
/// the largest line the model supports, so staging, peeking, and handing a
/// payload to the bus are all allocation-free in steady state.
///
/// Dereferences to `[u8]`, so slicing, indexing, and iteration work as
/// they did when this was a `Vec<u8>`.
#[derive(Clone, Copy)]
pub struct PayloadBuf {
    len: u8,
    bytes: [u8; MAX_BLOCK],
}

impl PayloadBuf {
    /// The empty payload (a read transaction carries no data).
    pub const fn empty() -> Self {
        PayloadBuf {
            len: 0,
            bytes: [0; MAX_BLOCK],
        }
    }

    /// Copies `src` into a fresh payload.
    ///
    /// # Panics
    ///
    /// Panics if `src` exceeds [`MAX_BLOCK`] bytes.
    pub fn from_slice(src: &[u8]) -> Self {
        assert!(
            src.len() <= MAX_BLOCK,
            "payload of {} bytes exceeds {MAX_BLOCK}",
            src.len()
        );
        let mut p = PayloadBuf::empty();
        p.bytes[..src.len()].copy_from_slice(src);
        p.len = src.len() as u8;
        p
    }

    /// The staged bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Number of staged bytes.
    #[allow(clippy::len_without_is_empty)] // is_empty comes via Deref
    pub fn len(&self) -> usize {
        self.len as usize
    }
}

impl std::ops::Deref for PayloadBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for PayloadBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for PayloadBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PayloadBuf {}

impl PartialEq<[u8]> for PayloadBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for PayloadBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for PayloadBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for PayloadBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<&[u8]> for PayloadBuf {
    fn from(src: &[u8]) -> Self {
        PayloadBuf::from_slice(src)
    }
}

// Serialized exactly as the `Vec<u8>` it replaced: a JSON array of
// numbers, so checked-in artifacts are unchanged.
impl serde::Serialize for PayloadBuf {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Array(
            self.as_slice()
                .iter()
                .map(serde::Serialize::to_value)
                .collect(),
        )
    }
}

impl serde::Deserialize for PayloadBuf {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        let bytes = Vec::<u8>::from_value(v)?;
        if bytes.len() > MAX_BLOCK {
            return Err(serde::de::Error::mismatch("PayloadBuf", v));
        }
        Ok(PayloadBuf::from_slice(&bytes))
    }
}

/// A bus transaction paired with the data bytes it carries.
///
/// [`csb_bus::Transaction`] is timing-only; I/O devices in the simulator
/// also need the written values, which travel alongside in a fixed
/// [`PayloadBuf`] — copying a prepared transaction is a plain memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedTxn {
    /// The timing-level transaction to hand to the bus.
    pub txn: csb_bus::Transaction,
    /// The `txn.size` data bytes (padding already zeroed).
    pub data: PayloadBuf,
}
