//! The uncached buffer, hardware combining baselines, and the conditional
//! store buffer (CSB).
//!
//! This crate implements the paper's primary contribution and the baseline
//! mechanisms it is compared against:
//!
//! * [`UncachedBuffer`] — the FIFO buffer between the processor and the
//!   system interface that holds uncached loads and stores. Configured with
//!   a combining block size it models the spectrum of hardware-transparent
//!   write combining found in 1990s processors: 8 B (non-combining, every
//!   store is its own bus transaction), 16 B (PowerPC 620-style pairing), up
//!   to a full cache line (MIPS R10000 uncached-accelerated mode). Combining
//!   is opportunistic: a store coalesces into a waiting entry only while the
//!   bus keeps that entry waiting, and the resulting transactions must be
//!   naturally aligned powers of two — which is why hardware combining
//!   cannot guarantee a single burst.
//! * [`ConditionalStoreBuffer`] — the paper's CSB (§3.2): one cache line of
//!   data plus the issuing process's ID, the line-aligned target address,
//!   and a hit counter. Software accumulates *combining stores* and commits
//!   them with a *conditional flush* that atomically emits the line as a
//!   single burst — or fails, returning 0, if a competing process disturbed
//!   the buffer. This provides lock-free, exactly-once device access.
//! * [`ByteMask`] / [`decompose`] — the natural-alignment burst decomposition
//!   shared by both mechanisms.
//!
//! # Examples
//!
//! An uninterrupted CSB sequence commits atomically; an interleaved store
//! from another process makes the flush fail:
//!
//! ```
//! use csb_isa::Addr;
//! use csb_uncached::{ConditionalStoreBuffer, CsbConfig, FlushOutcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut csb = ConditionalStoreBuffer::new(CsbConfig::new(64))?;
//! let line = Addr::new(0x2000_0000);
//!
//! for i in 0..8u64 {
//!     csb.store(1, line.offset(8 * i as i64), &i.to_le_bytes())?;
//! }
//! assert_eq!(csb.conditional_flush(1, line, 8), FlushOutcome::Success);
//! let burst = csb.transaction_accepted(); // the bus takes the line
//! assert_eq!(burst.txn.size, 64);
//!
//! // Second attempt by PID 1, but PID 2 sneaks a store in.
//! csb.store(1, line, &[0xff; 8])?;
//! csb.store(2, line.offset(8), &[0xee; 8])?; // clears the buffer, count=1
//! assert_eq!(csb.conditional_flush(1, line, 2), FlushOutcome::Fail);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod csb;
mod mask;

pub use buffer::{
    CombineRule, PushOutcome, UncachedBuffer, UncachedConfig, UncachedConfigError, UncachedStats,
};
pub use csb::{
    ConditionalStoreBuffer, CsbConfig, CsbConfigError, CsbError, CsbStats, FlushOutcome,
    StoreOutcome,
};
pub use mask::{decompose, ByteMask, Chunk, MAX_BLOCK};

/// A bus transaction paired with the data bytes it carries.
///
/// [`csb_bus::Transaction`] is timing-only; I/O devices in the simulator
/// also need the written values, which travel alongside here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedTxn {
    /// The timing-level transaction to hand to the bus.
    pub txn: csb_bus::Transaction,
    /// The `txn.size` data bytes (padding already zeroed).
    pub data: Vec<u8>,
}
