//! The FIFO uncached buffer with hardware-transparent store combining.

use std::collections::VecDeque;
use std::fmt;

use csb_bus::Transaction;
use csb_isa::Addr;
use csb_obs::{EventKind, TraceSink, Track};
use serde::{Deserialize, Serialize};

use crate::mask::{decompose_into, ByteMask, Chunk, MAX_BLOCK};
use crate::{PayloadBuf, PreparedTxn};

/// How the buffer decides which stores may combine and how entries drain.
///
/// The paper's figures sweep [`CombineRule::Block`] sizes; the other two
/// rules model the specific processors named in its related-work section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CombineRule {
    /// Combine any store falling in the same block-aligned window
    /// (idealized combining; what the figures call "16B"/"32B"/…). Entries
    /// drain as the minimal set of naturally aligned power-of-two chunks.
    #[default]
    Block,
    /// MIPS R10000 uncached-accelerated mode: combining continues only
    /// while stores arrive at strictly sequential ascending addresses; a
    /// store breaking the pattern closes the entry. An entry drains as a
    /// single burst only if it filled the entire block — otherwise as a
    /// series of single-beat (store-sized) transfers.
    Sequential,
    /// PowerPC 620: at most two same-size stores to consecutive addresses
    /// merge into one double-width transaction (and only when the pair is
    /// naturally aligned for it).
    Pair,
}

impl fmt::Display for CombineRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombineRule::Block => f.write_str("block"),
            CombineRule::Sequential => f.write_str("sequential (R10000)"),
            CombineRule::Pair => f.write_str("pair (PowerPC 620)"),
        }
    }
}

/// Uncached buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UncachedConfig {
    /// Combining block size in bytes: the width of one buffer entry and the
    /// largest transaction the buffer can emit. 8 = non-combining (every
    /// doubleword store is its own transaction); a full cache line models
    /// R10000-style uncached-accelerated combining.
    pub block: usize,
    /// Number of entries the buffer can hold before the processor stalls.
    pub capacity: usize,
    /// Pattern rule governing combining and draining.
    pub rule: CombineRule,
}

impl UncachedConfig {
    /// A buffer with the given combining block, the default 8 entries, and
    /// the idealized [`CombineRule::Block`] rule.
    pub fn with_block(block: usize) -> Self {
        UncachedConfig {
            block,
            capacity: 8,
            rule: CombineRule::Block,
        }
    }

    /// The non-combining baseline (8-byte entries).
    pub fn non_combining() -> Self {
        Self::with_block(8)
    }

    /// The MIPS R10000 uncached-accelerated baseline over a full `line`.
    pub fn r10000(line: usize) -> Self {
        UncachedConfig {
            block: line,
            capacity: 8,
            rule: CombineRule::Sequential,
        }
    }

    /// The PowerPC 620 pairing baseline (16-byte entries, pair rule).
    pub fn ppc620() -> Self {
        UncachedConfig {
            block: 16,
            capacity: 8,
            rule: CombineRule::Pair,
        }
    }
}

/// Invalid [`UncachedConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UncachedConfigError {
    /// Block must be a power of two in `8..=MAX_BLOCK`.
    BadBlock(usize),
    /// Capacity must be nonzero.
    ZeroCapacity,
}

impl fmt::Display for UncachedConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UncachedConfigError::BadBlock(b) => {
                write!(
                    f,
                    "combining block {b} is not a power of two in 8..={MAX_BLOCK}"
                )
            }
            UncachedConfigError::ZeroCapacity => f.write_str("buffer capacity must be nonzero"),
        }
    }
}

impl std::error::Error for UncachedConfigError {}

/// Result of offering a store to the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Coalesced into an existing waiting entry (no new bus transaction).
    Coalesced,
    /// Allocated a new entry.
    NewEntry,
    /// Buffer full — the processor must stall and retry.
    Full,
}

/// Counters accumulated by [`UncachedBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UncachedStats {
    /// Stores accepted.
    pub stores: u64,
    /// Stores that coalesced into an existing entry.
    pub coalesced: u64,
    /// Store entries allocated.
    pub entries: u64,
    /// Loads accepted.
    pub loads: u64,
    /// Stalls reported (push attempts while full).
    pub full_stalls: u64,
    /// Transactions handed to the bus.
    pub transactions: u64,
}

#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    base: Addr, // block-aligned
    mask: ByteMask,
    /// Inline staging for the entry's data; the first `block` bytes are
    /// live. Fixed at the maximum line size so entries never allocate.
    data: [u8; MAX_BLOCK],
    /// Once the entry starts draining it no longer accepts coalescing.
    locked: bool,
    /// Pattern rules close an entry against further coalescing without
    /// locking it (e.g. an R10000 sequence broken by a non-sequential
    /// store).
    closed: bool,
    /// Next strictly-sequential address ([`CombineRule::Sequential`] /
    /// [`CombineRule::Pair`]).
    expected_next: u64,
    /// Width of the stores accumulated (the single-beat size).
    beat: usize,
    /// Number of stores merged into the entry.
    stores: usize,
}

#[derive(Debug, Clone, Copy)]
enum Entry {
    Store(StoreEntry),
    Load { addr: Addr, width: usize, tag: u64 },
    Barrier,
}

/// The FIFO buffer between the processor's memory queue and the system
/// interface, holding uncached loads and stores until the bus accepts them.
///
/// Combining model (paper §4.1): a store coalesces into an existing entry
/// iff its address falls in the same `block`-aligned window and it would not
/// bypass an earlier load or barrier (or an entry already draining).
/// Entries drain in FIFO order as the minimal sequence of naturally aligned
/// power-of-two transactions covering their present bytes — so partial
/// blocks degrade into multiple single-beat transfers, which is exactly the
/// guarantee hardware combining cannot make and the CSB can.
///
/// # Examples
///
/// ```
/// use csb_isa::Addr;
/// use csb_uncached::{PushOutcome, UncachedBuffer, UncachedConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut buf = UncachedBuffer::new(UncachedConfig::with_block(64))?;
/// let base = Addr::new(0x1000_0000);
/// assert_eq!(buf.push_store(base, &[1u8; 8]), PushOutcome::NewEntry);
/// assert_eq!(buf.push_store(base.offset(8), &[2u8; 8]), PushOutcome::Coalesced);
///
/// // Both doublewords drain as one 16-byte transaction.
/// let txn = buf.peek_transaction().expect("entry ready");
/// assert_eq!(txn.txn.size, 16);
/// buf.transaction_accepted();
/// assert!(buf.is_drained());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct UncachedBuffer {
    cfg: UncachedConfig,
    entries: VecDeque<Entry>,
    /// Remaining decomposed chunks of the locked head entry. Only the head
    /// ever drains, so one reusable queue serves the whole buffer — refilled
    /// in place when a head locks, never reallocated in steady state.
    drain: VecDeque<Chunk>,
    stats: UncachedStats,
    /// Structured trace sink (disabled by default; see
    /// [`UncachedBuffer::set_trace_sink`]).
    sink: TraceSink,
}

impl UncachedBuffer {
    /// Creates an empty buffer.
    ///
    /// # Errors
    ///
    /// Returns [`UncachedConfigError`] if the block size is not a power of
    /// two in `8..=128` or the capacity is zero.
    pub fn new(cfg: UncachedConfig) -> Result<Self, UncachedConfigError> {
        if cfg.block < 8 || cfg.block > MAX_BLOCK || !cfg.block.is_power_of_two() {
            return Err(UncachedConfigError::BadBlock(cfg.block));
        }
        if cfg.capacity == 0 {
            return Err(UncachedConfigError::ZeroCapacity);
        }
        Ok(UncachedBuffer {
            cfg,
            entries: VecDeque::with_capacity(cfg.capacity),
            drain: VecDeque::with_capacity(MAX_BLOCK),
            stats: UncachedStats::default(),
            sink: TraceSink::disabled(),
        })
    }

    /// Resets to the state [`UncachedBuffer::new`]`(cfg)` would produce,
    /// keeping the entry and drain storage (the entry queue's reservation
    /// grows if `cfg.capacity` increased). The simulator's warm-reset path.
    ///
    /// # Errors
    ///
    /// As for [`UncachedBuffer::new`]. On error the buffer is unchanged.
    pub fn reset_with(&mut self, cfg: UncachedConfig) -> Result<(), UncachedConfigError> {
        if cfg.block < 8 || cfg.block > MAX_BLOCK || !cfg.block.is_power_of_two() {
            return Err(UncachedConfigError::BadBlock(cfg.block));
        }
        if cfg.capacity == 0 {
            return Err(UncachedConfigError::ZeroCapacity);
        }
        self.entries.clear();
        self.entries.reserve(cfg.capacity);
        self.drain.clear();
        self.cfg = cfg;
        self.stats = UncachedStats::default();
        self.sink = TraceSink::disabled();
        Ok(())
    }

    /// Installs a structured trace sink; accepted pushes, loads, and full
    /// stalls emit instants on the uncached-buffer track, stamped by the
    /// sink's shared clock.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// The buffer configuration.
    pub fn config(&self) -> &UncachedConfig {
        &self.cfg
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &UncachedStats {
        &self.stats
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` when every entry has been handed to the bus — the
    /// condition a `membar` waits for before letting retirement proceed.
    pub fn is_drained(&self) -> bool {
        self.entries.is_empty()
    }

    /// The exact number of bus grants still required to drain the buffer
    /// as it stands — the buffer-side half of a transaction-granular
    /// drain horizon (the bus timeline supplies *when* each grant can
    /// happen; this supplies *how many* are left). The locked head
    /// contributes its remaining drain chunks, every other store entry
    /// the chunk count its decomposition will produce, loads one grant
    /// each, barriers none (they are popped, not granted). Later
    /// coalescing into a still-open entry can change the figure; it is
    /// exact whenever the CPU side is stalled (the fast-forward case).
    pub fn pending_grants(&self) -> usize {
        let mut grants = 0usize;
        for (i, entry) in self.entries.iter().enumerate() {
            match entry {
                Entry::Store(se) if i == 0 && se.locked => grants += self.drain.len(),
                Entry::Store(se) => {
                    grants += match self.cfg.rule {
                        CombineRule::Block => {
                            let mut n = 0;
                            decompose_into(se.mask, self.cfg.block, |_| n += 1);
                            n
                        }
                        CombineRule::Sequential if se.mask.covers(0, self.cfg.block) => 1,
                        CombineRule::Sequential => se.stores,
                        CombineRule::Pair => 1,
                    }
                }
                Entry::Load { .. } => grants += 1,
                Entry::Barrier => {}
            }
        }
        grants
    }

    /// Serializes the buffer's architectural state: counters, queued
    /// entries, and the drain decomposition of a locked head. The
    /// configuration and trace sink are wiring the restoring side supplies.
    pub fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("ubuf");
        w.put_u64(self.stats.stores);
        w.put_u64(self.stats.coalesced);
        w.put_u64(self.stats.entries);
        w.put_u64(self.stats.loads);
        w.put_u64(self.stats.full_stalls);
        w.put_u64(self.stats.transactions);
        w.put_usize(self.entries.len());
        for entry in &self.entries {
            match entry {
                Entry::Store(se) => {
                    w.put_u8(0);
                    w.put_u64(se.base.raw());
                    w.put_u64(se.mask.bits() as u64);
                    w.put_u64((se.mask.bits() >> 64) as u64);
                    w.put_raw(&se.data);
                    w.put_bool(se.locked);
                    w.put_bool(se.closed);
                    w.put_u64(se.expected_next);
                    w.put_usize(se.beat);
                    w.put_usize(se.stores);
                }
                Entry::Load { addr, width, tag } => {
                    w.put_u8(1);
                    w.put_u64(addr.raw());
                    w.put_usize(*width);
                    w.put_u64(*tag);
                }
                Entry::Barrier => w.put_u8(2),
            }
        }
        w.put_usize(self.drain.len());
        for c in &self.drain {
            w.put_usize(c.offset);
            w.put_usize(c.size);
        }
    }

    /// Restores state written by [`UncachedBuffer::save_state`] into a
    /// buffer already configured with the same [`UncachedConfig`].
    ///
    /// # Errors
    ///
    /// [`csb_snap::SnapshotError`] on a malformed stream.
    pub fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        r.take_tag("ubuf")?;
        self.entries.clear();
        self.drain.clear();
        self.stats.stores = r.take_u64()?;
        self.stats.coalesced = r.take_u64()?;
        self.stats.entries = r.take_u64()?;
        self.stats.loads = r.take_u64()?;
        self.stats.full_stalls = r.take_u64()?;
        self.stats.transactions = r.take_u64()?;
        let n = r.take_usize()?;
        if n > self.cfg.capacity {
            return Err(csb_snap::SnapshotError::Corrupt(format!(
                "{n} uncached entries exceed capacity {}",
                self.cfg.capacity
            )));
        }
        for _ in 0..n {
            let entry = match r.take_u8()? {
                0 => {
                    let base = Addr::new(r.take_u64()?);
                    let lo = r.take_u64()? as u128;
                    let hi = r.take_u64()? as u128;
                    let mut data = [0u8; MAX_BLOCK];
                    data.copy_from_slice(r.take_raw(MAX_BLOCK)?);
                    Entry::Store(StoreEntry {
                        base,
                        mask: ByteMask::from_bits(hi << 64 | lo),
                        data,
                        locked: r.take_bool()?,
                        closed: r.take_bool()?,
                        expected_next: r.take_u64()?,
                        beat: r.take_usize()?,
                        stores: r.take_usize()?,
                    })
                }
                1 => Entry::Load {
                    addr: Addr::new(r.take_u64()?),
                    width: r.take_usize()?,
                    tag: r.take_u64()?,
                },
                2 => Entry::Barrier,
                k => {
                    return Err(csb_snap::SnapshotError::Corrupt(format!(
                        "unknown uncached entry kind {k}"
                    )))
                }
            };
            self.entries.push_back(entry);
        }
        let chunks = r.take_usize()?;
        for _ in 0..chunks {
            let offset = r.take_usize()?;
            let size = r.take_usize()?;
            if offset + size > MAX_BLOCK {
                return Err(csb_snap::SnapshotError::Corrupt(format!(
                    "drain chunk {offset}+{size} exceeds {MAX_BLOCK}"
                )));
            }
            self.drain.push_back(Chunk { offset, size });
        }
        Ok(())
    }

    /// Offers an uncached store of `data.len()` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the store is wider than the combining block or not
    /// naturally aligned to its own width.
    pub fn push_store(&mut self, addr: Addr, data: &[u8]) -> PushOutcome {
        let width = data.len();
        assert!(
            width > 0 && width <= self.cfg.block && width.is_power_of_two(),
            "store width {width} invalid for block {}",
            self.cfg.block
        );
        assert!(
            addr.is_aligned(width as u64),
            "store at {addr} not aligned to {width}"
        );

        let base = addr.align_down(self.cfg.block as u64);
        let off = addr.offset_in(self.cfg.block as u64) as usize;

        if self.try_coalesce(addr, base, off, data, width) {
            self.stats.stores += 1;
            self.stats.coalesced += 1;
            self.sink.emit(
                Track::Uncached,
                EventKind::UncachedPush {
                    addr: addr.raw(),
                    width,
                    coalesced: true,
                },
            );
            return PushOutcome::Coalesced;
        }

        if self.entries.len() >= self.cfg.capacity {
            self.stats.full_stalls += 1;
            self.sink.emit(
                Track::Uncached,
                EventKind::UncachedFull { addr: addr.raw() },
            );
            return PushOutcome::Full;
        }
        let mut se = StoreEntry {
            base,
            mask: ByteMask::empty(),
            data: [0u8; MAX_BLOCK],
            locked: false,
            closed: false,
            expected_next: addr.raw() + width as u64,
            beat: width,
            stores: 1,
        };
        se.mask.set_range(off, width);
        se.data[off..off + width].copy_from_slice(data);
        self.entries.push_back(Entry::Store(se));
        self.stats.stores += 1;
        self.stats.entries += 1;
        self.sink.emit(
            Track::Uncached,
            EventKind::UncachedPush {
                addr: addr.raw(),
                width,
                coalesced: false,
            },
        );
        PushOutcome::NewEntry
    }

    /// Attempts to merge the store into an existing entry under the
    /// configured rule. Returns `true` on success.
    fn try_coalesce(
        &mut self,
        addr: Addr,
        base: Addr,
        off: usize,
        data: &[u8],
        width: usize,
    ) -> bool {
        match self.cfg.rule {
            CombineRule::Block => {
                // Scan from the tail; stop at the first load, barrier, or
                // draining store — coalescing past those would reorder.
                for entry in self.entries.iter_mut().rev() {
                    match entry {
                        Entry::Store(se) if !se.locked => {
                            if se.base == base {
                                se.mask.set_range(off, width);
                                se.data[off..off + width].copy_from_slice(data);
                                se.stores += 1;
                                return true;
                            }
                            // Keep scanning: an older unlocked store to a
                            // different block does not order against this
                            // store.
                        }
                        _ => return false,
                    }
                }
                false
            }
            CombineRule::Sequential => {
                // Only the youngest entry detects the pattern; breaking it
                // closes that entry for good (R10000 behaviour).
                let Some(Entry::Store(se)) = self.entries.back_mut() else {
                    return false;
                };
                if se.locked || se.closed {
                    return false;
                }
                if se.base == base && addr.raw() == se.expected_next && width == se.beat {
                    se.mask.set_range(off, width);
                    se.data[off..off + width].copy_from_slice(data);
                    se.expected_next += width as u64;
                    se.stores += 1;
                    true
                } else {
                    se.closed = true;
                    false
                }
            }
            CombineRule::Pair => {
                let Some(Entry::Store(se)) = self.entries.back_mut() else {
                    return false;
                };
                if se.locked || se.closed || se.stores != 1 {
                    return false;
                }
                let first_off = se.mask.bits().trailing_zeros() as usize;
                let pair_aligned = first_off.is_multiple_of(2 * se.beat);
                if se.base == base
                    && addr.raw() == se.expected_next
                    && width == se.beat
                    && pair_aligned
                {
                    se.mask.set_range(off, width);
                    se.data[off..off + width].copy_from_slice(data);
                    se.stores = 2;
                    se.closed = true; // a pair is complete
                    true
                } else {
                    se.closed = true;
                    false
                }
            }
        }
    }

    /// Pure mirror of [`UncachedBuffer::push_store`]'s acceptance: `true`
    /// if the store would coalesce or a new entry fits. No stall counting,
    /// no trace events, no entry mutation — the fast-forward path uses
    /// this to prove a refused store would stay refused.
    pub fn would_accept_store(&self, addr: Addr, width: usize) -> bool {
        let base = addr.align_down(self.cfg.block as u64);
        self.would_coalesce(addr, base, width) || self.entries.len() < self.cfg.capacity
    }

    /// Pure mirror of [`UncachedBuffer::try_coalesce`]'s success predicate.
    /// (The mutating version also closes Sequential/Pair entries on a
    /// mismatch; deferring that across skipped refused pushes is invisible
    /// because the match conditions are frozen while the buffer is full
    /// and `closed` feeds nothing but the next coalesce attempt.)
    fn would_coalesce(&self, addr: Addr, base: Addr, width: usize) -> bool {
        match self.cfg.rule {
            CombineRule::Block => {
                for entry in self.entries.iter().rev() {
                    match entry {
                        Entry::Store(se) if !se.locked => {
                            if se.base == base {
                                return true;
                            }
                        }
                        _ => return false,
                    }
                }
                false
            }
            CombineRule::Sequential => {
                let Some(Entry::Store(se)) = self.entries.back() else {
                    return false;
                };
                !se.locked
                    && !se.closed
                    && se.base == base
                    && addr.raw() == se.expected_next
                    && width == se.beat
            }
            CombineRule::Pair => {
                let Some(Entry::Store(se)) = self.entries.back() else {
                    return false;
                };
                if se.locked || se.closed || se.stores != 1 {
                    return false;
                }
                let first_off = se.mask.bits().trailing_zeros() as usize;
                se.base == base
                    && addr.raw() == se.expected_next
                    && width == se.beat
                    && first_off.is_multiple_of(2 * se.beat)
            }
        }
    }

    /// Pure mirror of [`UncachedBuffer::push_load`]'s acceptance (loads
    /// never combine, so this is just the capacity check).
    pub fn would_accept_load(&self) -> bool {
        self.entries.len() < self.cfg.capacity
    }

    /// Bulk-accounts `n` full-buffer stalls the fast-forward path skipped
    /// (each skipped cycle would have re-offered and been refused).
    pub fn add_full_stalls(&mut self, n: u64) {
        self.stats.full_stalls += n;
    }

    /// Offers an uncached load. Loads never combine and act as ordering
    /// fences for later stores. Returns `false` (and counts a stall) if the
    /// buffer is full.
    ///
    /// # Panics
    ///
    /// Panics if the width is not a power of two in `1..=8` or the address
    /// is not naturally aligned.
    pub fn push_load(&mut self, addr: Addr, width: usize, tag: u64) -> bool {
        assert!(
            (1..=8).contains(&width) && width.is_power_of_two(),
            "load width {width} invalid"
        );
        assert!(
            addr.is_aligned(width as u64),
            "load at {addr} not aligned to {width}"
        );
        if self.entries.len() >= self.cfg.capacity {
            self.stats.full_stalls += 1;
            self.sink.emit(
                Track::Uncached,
                EventKind::UncachedFull { addr: addr.raw() },
            );
            return false;
        }
        self.entries.push_back(Entry::Load { addr, width, tag });
        self.stats.loads += 1;
        self.sink.emit(
            Track::Uncached,
            EventKind::UncachedLoad {
                addr: addr.raw(),
                width,
            },
        );
        true
    }

    /// Inserts an explicit ordering barrier entry.
    ///
    /// The simulated `membar` does not need this (it stalls retirement, so
    /// no later ops reach the buffer), but device drivers composed from raw
    /// operations can use it to fence combining without stalling.
    pub fn push_barrier(&mut self) {
        self.entries.push_back(Entry::Barrier);
    }

    /// Returns the next transaction to present to the bus, locking the head
    /// entry against further coalescing. Returns `None` when nothing is
    /// ready. Call [`UncachedBuffer::transaction_accepted`] once the bus
    /// takes it.
    pub fn peek_transaction(&mut self) -> Option<PreparedTxn> {
        // Discard leading barriers: they are ordering markers, not traffic.
        while matches!(self.entries.front(), Some(Entry::Barrier)) {
            self.entries.pop_front();
        }
        match self.entries.front_mut()? {
            Entry::Store(se) => {
                if !se.locked {
                    se.locked = true;
                    debug_assert!(self.drain.is_empty());
                    match self.cfg.rule {
                        CombineRule::Block => {
                            decompose_into(se.mask, self.cfg.block, |c| self.drain.push_back(c));
                        }
                        CombineRule::Sequential => {
                            if se.mask.covers(0, self.cfg.block) {
                                // Complete line: one burst (R10000).
                                self.drain.push_back(Chunk {
                                    offset: 0,
                                    size: self.cfg.block,
                                });
                            } else {
                                // Pattern incomplete: single-beat transfers.
                                let first = se.mask.bits().trailing_zeros() as usize;
                                for i in 0..se.stores {
                                    self.drain.push_back(Chunk {
                                        offset: first + i * se.beat,
                                        size: se.beat,
                                    });
                                }
                            }
                        }
                        CombineRule::Pair => {
                            let first = se.mask.bits().trailing_zeros() as usize;
                            self.drain.push_back(Chunk {
                                offset: first,
                                size: se.beat * se.stores,
                            });
                        }
                    }
                }
                let chunk = *self.drain.front().expect("locked store entry has chunks");
                Some(PreparedTxn {
                    txn: Transaction::write(se.base.offset(chunk.offset as i64), chunk.size),
                    data: PayloadBuf::from_slice(&se.data[chunk.offset..chunk.offset + chunk.size]),
                })
            }
            Entry::Load { addr, width, tag } => Some(PreparedTxn {
                txn: Transaction::read(*addr, *width).tag(*tag),
                data: PayloadBuf::empty(),
            }),
            Entry::Barrier => unreachable!("leading barriers were discarded"),
        }
    }

    /// Acknowledges that the bus accepted the transaction most recently
    /// returned by [`UncachedBuffer::peek_transaction`].
    ///
    /// # Panics
    ///
    /// Panics if no transaction was pending.
    pub fn transaction_accepted(&mut self) {
        self.stats.transactions += 1;
        let done = match self.entries.front().expect("no pending transaction") {
            Entry::Store(se) => {
                assert!(se.locked, "no pending transaction");
                self.drain.pop_front().expect("no pending chunk");
                self.drain.is_empty()
            }
            Entry::Load { .. } => true,
            Entry::Barrier => unreachable!("barriers are skipped by peek_transaction"),
        };
        if done {
            self.entries.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(block: usize) -> UncachedBuffer {
        UncachedBuffer::new(UncachedConfig::with_block(block)).unwrap()
    }

    fn dword(v: u64) -> [u8; 8] {
        v.to_le_bytes()
    }

    #[test]
    fn config_validation() {
        assert!(matches!(
            UncachedBuffer::new(UncachedConfig::with_block(4)),
            Err(UncachedConfigError::BadBlock(4))
        ));
        assert!(matches!(
            UncachedBuffer::new(UncachedConfig::with_block(48)),
            Err(UncachedConfigError::BadBlock(48))
        ));
        assert!(matches!(
            UncachedBuffer::new(UncachedConfig {
                capacity: 0,
                ..UncachedConfig::with_block(64)
            }),
            Err(UncachedConfigError::ZeroCapacity)
        ));
        assert_eq!(UncachedConfig::non_combining().block, 8);
    }

    #[test]
    fn non_combining_never_coalesces() {
        let mut b = buf(8);
        let base = Addr::new(0x1000);
        assert_eq!(b.push_store(base, &dword(1)), PushOutcome::NewEntry);
        assert_eq!(
            b.push_store(base.offset(8), &dword(2)),
            PushOutcome::NewEntry
        );
        assert_eq!(b.len(), 2);
        let t = b.peek_transaction().unwrap();
        assert_eq!(t.txn.size, 8);
        assert_eq!(t.data, dword(1));
    }

    #[test]
    fn sequential_dwords_coalesce_to_full_line() {
        let mut b = buf(64);
        let base = Addr::new(0x2000);
        for i in 0..8 {
            b.push_store(base.offset(8 * i), &dword(i as u64));
        }
        assert_eq!(b.len(), 1);
        let t = b.peek_transaction().unwrap();
        assert_eq!(t.txn.size, 64);
        assert_eq!(t.txn.addr, base);
        assert_eq!(&t.data[8..16], &dword(1));
        b.transaction_accepted();
        assert!(b.is_drained());
        assert_eq!(b.stats().coalesced, 7);
    }

    #[test]
    fn partial_block_drains_as_aligned_chunks() {
        let mut b = buf(64);
        let base = Addr::new(0x2000);
        // Dwords 1..8 -> 8B@8, 16B@16, 32B@32.
        for i in 1..8 {
            b.push_store(base.offset(8 * i), &dword(i as u64));
        }
        let mut sizes = Vec::new();
        while let Some(t) = b.peek_transaction() {
            sizes.push(t.txn.size);
            b.transaction_accepted();
        }
        assert_eq!(sizes, vec![8, 16, 32]);
        assert_eq!(b.stats().transactions, 3);
    }

    #[test]
    fn locked_entry_rejects_coalescing() {
        let mut b = buf(64);
        let base = Addr::new(0x2000);
        b.push_store(base, &dword(1));
        let _ = b.peek_transaction().unwrap(); // locks the entry
        assert_eq!(
            b.push_store(base.offset(8), &dword(2)),
            PushOutcome::NewEntry
        );
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn load_fences_later_stores() {
        let mut b = buf(64);
        let base = Addr::new(0x2000);
        b.push_store(base, &dword(1));
        assert!(b.push_load(base.offset(32), 8, 7));
        // Same block, but an intervening load forbids coalescing.
        assert_eq!(
            b.push_store(base.offset(8), &dword(2)),
            PushOutcome::NewEntry
        );
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn barrier_fences_and_is_skipped() {
        let mut b = buf(64);
        let base = Addr::new(0x2000);
        b.push_store(base, &dword(1));
        b.push_barrier();
        assert_eq!(
            b.push_store(base.offset(8), &dword(2)),
            PushOutcome::NewEntry
        );
        // Drain: store, (skip barrier), store.
        let t = b.peek_transaction().unwrap();
        assert_eq!(t.txn.addr, base);
        b.transaction_accepted();
        let t = b.peek_transaction().unwrap();
        assert_eq!(t.txn.addr, base.offset(8));
        b.transaction_accepted();
        assert!(b.is_drained());
    }

    #[test]
    fn interleaved_blocks_coalesce_independently() {
        // A store to a different block does not stop older-entry coalescing.
        let mut b = buf(64);
        let (b0, b1) = (Addr::new(0x2000), Addr::new(0x2040));
        b.push_store(b0, &dword(1));
        b.push_store(b1, &dword(2));
        assert_eq!(
            b.push_store(b0.offset(8), &dword(3)),
            PushOutcome::Coalesced
        );
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn capacity_stalls() {
        let mut b = UncachedBuffer::new(UncachedConfig {
            capacity: 2,
            ..UncachedConfig::with_block(8)
        })
        .unwrap();
        b.push_store(Addr::new(0), &dword(1));
        b.push_store(Addr::new(8), &dword(2));
        assert_eq!(b.push_store(Addr::new(16), &dword(3)), PushOutcome::Full);
        assert!(!b.push_load(Addr::new(24), 8, 0));
        assert_eq!(b.stats().full_stalls, 2);
    }

    #[test]
    fn loads_drain_as_reads() {
        let mut b = buf(64);
        b.push_load(Addr::new(0x3000), 4, 99);
        let t = b.peek_transaction().unwrap();
        assert_eq!(t.txn.kind, csb_bus::TxnKind::Read);
        assert_eq!(t.txn.size, 4);
        assert_eq!(t.txn.tag, 99);
        b.transaction_accepted();
        assert!(b.is_drained());
    }

    #[test]
    fn overwrite_within_entry_keeps_latest_data() {
        let mut b = buf(64);
        let base = Addr::new(0x2000);
        b.push_store(base, &dword(1));
        b.push_store(base, &dword(2));
        let t = b.peek_transaction().unwrap();
        assert_eq!(t.data, dword(2));
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_store_rejected() {
        buf(64).push_store(Addr::new(0x2004), &dword(1));
    }

    #[test]
    #[should_panic(expected = "no pending transaction")]
    fn accept_without_peek_panics() {
        buf(64).transaction_accepted();
    }

    fn drain_sizes(b: &mut UncachedBuffer) -> Vec<usize> {
        let mut sizes = Vec::new();
        while let Some(t) = b.peek_transaction() {
            sizes.push(t.txn.size);
            b.transaction_accepted();
        }
        sizes
    }

    #[test]
    fn r10000_full_line_is_one_burst() {
        let mut b = UncachedBuffer::new(UncachedConfig::r10000(64)).unwrap();
        let base = Addr::new(0x2000);
        for i in 0..8 {
            b.push_store(base.offset(8 * i), &dword(i as u64));
        }
        assert_eq!(b.len(), 1);
        assert_eq!(drain_sizes(&mut b), vec![64]);
    }

    #[test]
    fn r10000_partial_line_degrades_to_single_beats() {
        // Unlike Block combining (which would emit 8B+16B+32B aligned
        // chunks), the R10000 issues a series of single-beat transfers when
        // the line is incomplete.
        let mut b = UncachedBuffer::new(UncachedConfig::r10000(64)).unwrap();
        let base = Addr::new(0x2000);
        for i in 1..8 {
            b.push_store(base.offset(8 * i), &dword(i as u64));
        }
        assert_eq!(drain_sizes(&mut b), vec![8; 7]);
    }

    #[test]
    fn r10000_pattern_break_closes_entry() {
        let mut b = UncachedBuffer::new(UncachedConfig::r10000(64)).unwrap();
        let base = Addr::new(0x2000);
        b.push_store(base, &dword(0));
        b.push_store(base.offset(8), &dword(1));
        // Out-of-order store to the same line: breaks the pattern.
        assert_eq!(
            b.push_store(base.offset(32), &dword(4)),
            PushOutcome::NewEntry
        );
        // The original entry is closed: even a sequential continuation of
        // it cannot reopen combining there, and the new entry expects its
        // own continuation.
        assert_eq!(
            b.push_store(base.offset(16), &dword(2)),
            PushOutcome::NewEntry
        );
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn r10000_descending_never_combines() {
        let mut b = UncachedBuffer::new(UncachedConfig::r10000(64)).unwrap();
        let base = Addr::new(0x2000);
        for i in (0..4).rev() {
            b.push_store(base.offset(8 * i), &dword(i as u64));
        }
        assert_eq!(b.len(), 4);
        assert_eq!(b.stats().coalesced, 0);
    }

    #[test]
    fn ppc620_pairs_two_consecutive_same_size_stores() {
        let mut b = UncachedBuffer::new(UncachedConfig::ppc620()).unwrap();
        let base = Addr::new(0x2000);
        assert_eq!(b.push_store(base, &dword(1)), PushOutcome::NewEntry);
        assert_eq!(
            b.push_store(base.offset(8), &dword(2)),
            PushOutcome::Coalesced
        );
        // Third consecutive store cannot join the completed pair.
        assert_eq!(
            b.push_store(base.offset(16), &dword(3)),
            PushOutcome::NewEntry
        );
        assert_eq!(
            b.push_store(base.offset(24), &dword(4)),
            PushOutcome::Coalesced
        );
        assert_eq!(drain_sizes(&mut b), vec![16, 16]);
    }

    #[test]
    fn ppc620_rejects_misaligned_pairs() {
        let mut b = UncachedBuffer::new(UncachedConfig::ppc620()).unwrap();
        // A pair starting at offset 8 would form a misaligned 16B txn.
        let base = Addr::new(0x2008);
        assert_eq!(b.push_store(base, &dword(1)), PushOutcome::NewEntry);
        assert_eq!(
            b.push_store(base.offset(8), &dword(2)),
            PushOutcome::NewEntry
        );
        assert_eq!(drain_sizes(&mut b), vec![8, 8]);
    }

    #[test]
    fn ppc620_rejects_mixed_width_pairs() {
        let mut b = UncachedBuffer::new(UncachedConfig::ppc620()).unwrap();
        let base = Addr::new(0x2000);
        b.push_store(base, &dword(1));
        // Consecutive address but different width: no pairing.
        assert_eq!(
            b.push_store(base.offset(8), &[2u8; 4]),
            PushOutcome::NewEntry
        );
    }

    #[test]
    fn trace_sink_records_pushes_loads_and_full_stalls() {
        let mut b = UncachedBuffer::new(UncachedConfig {
            capacity: 2,
            ..UncachedConfig::with_block(64)
        })
        .unwrap();
        let sink = TraceSink::enabled();
        b.set_trace_sink(sink.clone());
        let base = Addr::new(0x2000);
        sink.set_now(3);
        b.push_store(base, &dword(1));
        b.push_store(base.offset(8), &dword(2));
        b.push_load(Addr::new(0x3000), 4, 1);
        b.push_load(Addr::new(0x3008), 4, 2); // full
        let kinds: Vec<&'static str> = sink.snapshot().iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec![
                "uncached.push",
                "uncached.push",
                "uncached.load",
                "uncached.full"
            ]
        );
        let events = sink.snapshot();
        assert!(matches!(
            events[1].kind,
            EventKind::UncachedPush {
                coalesced: true,
                ..
            }
        ));
        assert_eq!(events[0].cycle, 3);
    }

    #[test]
    fn rule_display_and_defaults() {
        assert_eq!(CombineRule::default(), CombineRule::Block);
        assert!(CombineRule::Sequential.to_string().contains("R10000"));
        assert!(CombineRule::Pair.to_string().contains("620"));
        assert_eq!(UncachedConfig::r10000(64).rule, CombineRule::Sequential);
        assert_eq!(UncachedConfig::ppc620().block, 16);
    }

    #[test]
    fn pending_grants_counts_remaining_bus_transactions() {
        let mut b = buf(64);
        assert_eq!(b.pending_grants(), 0);
        // A full aligned block drains as one transaction; a lone dword at
        // an odd slot of a second block adds another.
        for i in 0..8 {
            b.push_store(Addr::new(0x1000 + 8 * i), &dword(i));
        }
        b.push_store(Addr::new(0x1048), &dword(9));
        b.push_barrier();
        assert!(b.push_load(Addr::new(0x1080), 8, 7));
        assert_eq!(b.pending_grants(), 3);
        // Locking the head must not change the count, only its source.
        assert!(b.peek_transaction().is_some());
        assert_eq!(b.pending_grants(), 3);
        // Drain to empty: one grant at a time, monotonically.
        for left in (0..3usize).rev() {
            assert!(b.peek_transaction().is_some());
            b.transaction_accepted();
            assert_eq!(b.pending_grants(), left);
        }
        assert!(b.is_drained());
    }

    #[test]
    fn pending_grants_matches_partial_block_decomposition() {
        // Bytes at offsets 0..8 and 16..24 of one block: two naturally
        // aligned transactions, never one.
        let mut b = buf(64);
        b.push_store(Addr::new(0x1000), &dword(1));
        b.push_store(Addr::new(0x1010), &dword(2));
        assert_eq!(b.pending_grants(), 2);
    }
}
