//! The conditional store buffer (the paper's contribution, §3.2).

use std::collections::VecDeque;
use std::fmt;

use csb_bus::Transaction;
use csb_faults::{FaultInjector, FaultKind};
use csb_isa::Addr;
use csb_obs::{EventKind, TraceSink, Track};
use serde::{Deserialize, Serialize};

use crate::mask::{decompose_into, ByteMask, MAX_BLOCK};
use crate::{PayloadBuf, PreparedTxn};

/// A process identifier as seen by the CSB.
///
/// Real implementations source this from the supervisor-mode process ID /
/// address-space register (MIPS ASID, PA-RISC space ID, Alpha PID — §3.1).
pub type Pid = u32;

/// CSB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsbConfig {
    /// Line size in bytes — the data register is exactly one cache line.
    pub line: usize,
    /// Adds the second line buffer suggested in §3.2, letting new combining
    /// stores proceed while a flushed line awaits the system interface.
    pub double_buffered: bool,
    /// Relaxes the always-full-line rule: emit the smallest set of naturally
    /// aligned bursts covering the written bytes instead of one padded line
    /// (the paper notes this option for buses with multiple burst sizes).
    pub variable_burst: bool,
}

impl CsbConfig {
    /// Baseline single-buffered, full-line CSB with the given line size.
    pub fn new(line: usize) -> Self {
        CsbConfig {
            line,
            double_buffered: false,
            variable_burst: false,
        }
    }

    /// Enables the second line buffer.
    pub fn double_buffered(mut self) -> Self {
        self.double_buffered = true;
        self
    }

    /// Enables variable-size bursts.
    pub fn variable_burst(mut self) -> Self {
        self.variable_burst = true;
        self
    }
}

/// Invalid [`CsbConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsbConfigError {
    /// The rejected line size.
    pub line: usize,
}

impl fmt::Display for CsbConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CSB line size {} is not a power of two in 8..={MAX_BLOCK}",
            self.line
        )
    }
}

impl std::error::Error for CsbConfigError {}

/// Error returned by [`ConditionalStoreBuffer::store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsbError {
    /// The buffer is busy delivering a flushed line (single-buffered CSB):
    /// the processor must stall the store and retry.
    Busy,
    /// The store is wider than a register, misaligned, or crosses a line.
    BadStore {
        /// Offending address.
        addr: Addr,
        /// Store width.
        width: usize,
    },
}

impl fmt::Display for CsbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsbError::Busy => f.write_str("CSB busy delivering a flushed line"),
            CsbError::BadStore { addr, width } => {
                write!(f, "invalid combining store: {width}B at {addr}")
            }
        }
    }
}

impl std::error::Error for CsbError {}

/// Result of one combining store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// Matched the buffered line and PID; hit counter incremented.
    Merged {
        /// Hit counter value after the store.
        count: u64,
    },
    /// Mismatch (different line, different PID, or empty buffer): the buffer
    /// was cleared and restarted with this store; hit counter is 1.
    Reset,
}

/// Result of a conditional flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Line, PID, and expected count all matched: the line was committed as
    /// an atomic burst. The `swap` destination register keeps its value.
    Success,
    /// A condition failed: the buffer was cleared, nothing was issued, and
    /// the `swap` destination register receives 0.
    Fail,
}

impl FlushOutcome {
    /// The value the conditional-flush `swap` leaves in its register, given
    /// the expected count it carried in (§3.2: unchanged on success, 0 on
    /// failure).
    pub fn register_value(self, expected: u64) -> u64 {
        match self {
            FlushOutcome::Success => expected,
            FlushOutcome::Fail => 0,
        }
    }
}

/// Counters accumulated by the CSB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsbStats {
    /// Combining stores accepted.
    pub stores: u64,
    /// Stores that reset the buffer (conflict or cold start).
    pub resets: u64,
    /// The subset of `resets` where the buffered line belonged to a
    /// *different* process — the §3.2 interference the many-core
    /// contention sweep counts (a same-PID line change or cold start is
    /// not contention).
    pub cross_pid_resets: u64,
    /// Successful conditional flushes.
    pub flush_successes: u64,
    /// Failed conditional flushes.
    pub flush_failures: u64,
    /// Burst transactions handed to the bus.
    pub bursts: u64,
    /// Payload bytes committed.
    pub payload_bytes: u64,
    /// Stalls reported while busy.
    pub busy_stalls: u64,
}

impl fmt::Display for CsbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let flushes = self.flush_successes + self.flush_failures;
        write!(
            f,
            "csb: {} stores ({} resets, {} cross-pid), {}/{} flushes ok, {} bursts, \
             {} payload bytes, {} busy stalls",
            self.stores,
            self.resets,
            self.cross_pid_resets,
            self.flush_successes,
            flushes,
            self.bursts,
            self.payload_bytes,
            self.busy_stalls
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct LineBuf {
    base: Addr,
    pid: Pid,
    mask: ByteMask,
    /// Inline line staging; the first `line` bytes are live. Fixed at the
    /// maximum line size so resets are a zeroing memcpy, not an allocation.
    data: [u8; MAX_BLOCK],
    count: u64,
}

/// The conditional store buffer.
///
/// State per Figure 2 of the paper: one cache line of data, the owning
/// process ID, the line-aligned address of the most recent combining store,
/// and a hit counter counting consecutive unconflicted stores.
///
/// * A combining store whose (line address, PID) match the buffered values
///   merges and increments the counter; any mismatch clears the buffer and
///   restarts it with the new store (counter = 1). Stores may arrive in any
///   order within the line — only the count matters for conflict detection.
/// * A conditional flush carrying the expected count succeeds iff line
///   address, PID, *and* count match; it then emits the line as one burst
///   (unwritten bytes padded with zero, avoiding information leaks between
///   processes) and clears the buffer. On any mismatch it clears the buffer,
///   emits nothing, and signals failure so software can retry.
///
/// See the crate-level example for typical use.
#[derive(Debug, Clone)]
pub struct ConditionalStoreBuffer {
    cfg: CsbConfig,
    current: Option<LineBuf>,
    /// Flushed bursts awaiting the system interface.
    pending: VecDeque<PreparedTxn>,
    stats: CsbStats,
    /// Structured trace sink (disabled by default; see
    /// [`ConditionalStoreBuffer::set_trace_sink`]).
    sink: TraceSink,
    /// Fault-injection hook (disabled by default; see
    /// [`ConditionalStoreBuffer::set_fault_hook`]).
    faults: FaultInjector,
    /// Flushes forced to fail by the fault hook.
    fault_disturbs: u64,
}

impl ConditionalStoreBuffer {
    /// Creates an empty CSB.
    ///
    /// # Errors
    ///
    /// Returns [`CsbConfigError`] if the line size is not a power of two in
    /// `8..=128`.
    pub fn new(cfg: CsbConfig) -> Result<Self, CsbConfigError> {
        if cfg.line < 8 || cfg.line > MAX_BLOCK || !cfg.line.is_power_of_two() {
            return Err(CsbConfigError { line: cfg.line });
        }
        Ok(ConditionalStoreBuffer {
            cfg,
            current: None,
            // Worst case: a variable-burst flush decomposes into one chunk
            // per written byte, doubled when double-buffered.
            pending: VecDeque::with_capacity(if cfg.variable_burst { 2 * cfg.line } else { 2 }),
            stats: CsbStats::default(),
            sink: TraceSink::disabled(),
            faults: FaultInjector::disabled(),
            fault_disturbs: 0,
        })
    }

    /// Resets to the state [`ConditionalStoreBuffer::new`]`(cfg)` would
    /// produce, keeping the pending-burst storage (its reservation grows
    /// if the new shape needs more). The simulator's warm-reset path.
    ///
    /// # Errors
    ///
    /// As for [`ConditionalStoreBuffer::new`]. On error the CSB is
    /// unchanged.
    pub fn reset_with(&mut self, cfg: CsbConfig) -> Result<(), CsbConfigError> {
        if cfg.line < 8 || cfg.line > MAX_BLOCK || !cfg.line.is_power_of_two() {
            return Err(CsbConfigError { line: cfg.line });
        }
        self.current = None;
        self.pending.clear();
        self.pending
            .reserve(if cfg.variable_burst { 2 * cfg.line } else { 2 });
        self.cfg = cfg;
        self.stats = CsbStats::default();
        self.sink = TraceSink::disabled();
        self.faults = FaultInjector::disabled();
        self.fault_disturbs = 0;
        Ok(())
    }

    /// Installs a fault-injection hook. Each conditional flush asks the
    /// schedule whether it is disturbed ([`FaultKind::FlushDisturb`]): a
    /// disturbed flush behaves exactly as if a competing access had hit
    /// the buffered line — the buffer is cleared, nothing is issued, and
    /// the flush reports [`FlushOutcome::Fail`] so software retries.
    /// This makes the paper's retry path exercisable without a second
    /// processor.
    pub fn set_fault_hook(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Flushes forced to fail by the fault hook (0 when no hook is set).
    pub fn fault_disturbs(&self) -> u64 {
        self.fault_disturbs
    }

    /// Installs a structured trace sink; stores, busy stalls, and flush
    /// attempts/outcomes emit instants on the CSB track, stamped by the
    /// sink's shared clock.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// The CSB configuration.
    pub fn config(&self) -> &CsbConfig {
        &self.cfg
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &CsbStats {
        &self.stats
    }

    fn flush_capacity(&self) -> usize {
        if self.cfg.double_buffered {
            2
        } else {
            1
        }
    }

    /// Returns `true` if a combining store would be accepted right now.
    ///
    /// A single-buffered CSB stalls stores that follow a flush until the
    /// flushed line has been handed to the system interface (§3.2); the
    /// double-buffered variant hides that latency.
    pub fn can_accept_store(&self) -> bool {
        // `variable_burst` may leave several chunks pending from one flush;
        // they count as one logical line in flight.
        self.pending.is_empty() || self.cfg.double_buffered
    }

    /// Returns `true` if a conditional flush would be accepted right now
    /// (there is room to queue the resulting burst).
    pub fn can_accept_flush(&self) -> bool {
        self.pending.len() < self.flush_capacity()
    }

    /// Bulk-accounts `n` busy stalls the fast-forward path skipped (each
    /// skipped cycle would have re-offered a store and been refused).
    pub fn add_busy_stalls(&mut self, n: u64) {
        self.stats.busy_stalls += n;
    }

    /// Serializes the CSB's architectural state: the line buffer, queued
    /// bursts, counters, and the fault-disturb count. The configuration,
    /// trace sink, and fault hook are wiring the restoring side supplies.
    pub fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("csb");
        w.put_u64(self.stats.stores);
        w.put_u64(self.stats.resets);
        w.put_u64(self.stats.cross_pid_resets);
        w.put_u64(self.stats.flush_successes);
        w.put_u64(self.stats.flush_failures);
        w.put_u64(self.stats.bursts);
        w.put_u64(self.stats.payload_bytes);
        w.put_u64(self.stats.busy_stalls);
        w.put_u64(self.fault_disturbs);
        w.put_bool(self.current.is_some());
        if let Some(line) = &self.current {
            w.put_u64(line.base.raw());
            w.put_u32(line.pid);
            w.put_u64(line.mask.bits() as u64);
            w.put_u64((line.mask.bits() >> 64) as u64);
            w.put_raw(&line.data);
            w.put_u64(line.count);
        }
        w.put_usize(self.pending.len());
        for p in &self.pending {
            w.put_u64(p.txn.addr.raw());
            w.put_usize(p.txn.size);
            w.put_u8(match p.txn.kind {
                csb_bus::TxnKind::Write => 0,
                csb_bus::TxnKind::Read => 1,
            });
            w.put_usize(p.txn.payload);
            w.put_u64(p.txn.tag);
            w.put_bytes(&p.data);
        }
    }

    /// Restores state written by
    /// [`ConditionalStoreBuffer::save_state`] into a CSB already
    /// configured with the same [`CsbConfig`].
    ///
    /// # Errors
    ///
    /// [`csb_snap::SnapshotError`] on a malformed stream.
    pub fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        r.take_tag("csb")?;
        self.current = None;
        self.pending.clear();
        self.stats.stores = r.take_u64()?;
        self.stats.resets = r.take_u64()?;
        self.stats.cross_pid_resets = r.take_u64()?;
        self.stats.flush_successes = r.take_u64()?;
        self.stats.flush_failures = r.take_u64()?;
        self.stats.bursts = r.take_u64()?;
        self.stats.payload_bytes = r.take_u64()?;
        self.stats.busy_stalls = r.take_u64()?;
        self.fault_disturbs = r.take_u64()?;
        if r.take_bool()? {
            let base = Addr::new(r.take_u64()?);
            let pid = r.take_u32()?;
            let lo = r.take_u64()? as u128;
            let hi = r.take_u64()? as u128;
            let mut data = [0u8; MAX_BLOCK];
            data.copy_from_slice(r.take_raw(MAX_BLOCK)?);
            self.current = Some(LineBuf {
                base,
                pid,
                mask: ByteMask::from_bits(hi << 64 | lo),
                data,
                count: r.take_u64()?,
            });
        }
        let n = r.take_usize()?;
        for _ in 0..n {
            let addr = Addr::new(r.take_u64()?);
            let size = r.take_usize()?;
            let kind = r.take_u8()?;
            let payload = r.take_usize()?;
            let tag = r.take_u64()?;
            let bytes = r.take_bytes()?;
            if bytes.len() > MAX_BLOCK {
                return Err(csb_snap::SnapshotError::Corrupt(format!(
                    "CSB burst payload of {} bytes exceeds {MAX_BLOCK}",
                    bytes.len()
                )));
            }
            let txn = match kind {
                0 => Transaction::write(addr, size),
                1 => Transaction::read(addr, size),
                k => {
                    return Err(csb_snap::SnapshotError::Corrupt(format!(
                        "unknown transaction kind {k}"
                    )))
                }
            };
            self.pending.push_back(PreparedTxn {
                txn: txn.payload(payload).tag(tag),
                data: PayloadBuf::from_slice(bytes),
            });
        }
        Ok(())
    }

    /// Performs a combining store of `data.len()` bytes at `addr` on behalf
    /// of process `pid`.
    ///
    /// # Errors
    ///
    /// * [`CsbError::Busy`] if the CSB cannot accept stores (see
    ///   [`ConditionalStoreBuffer::can_accept_store`]); the processor stalls
    ///   and retries — this is flow control, not a conflict.
    /// * [`CsbError::BadStore`] if the width is not a power of two in
    ///   `1..=8` or the address is not naturally aligned.
    pub fn store(&mut self, pid: Pid, addr: Addr, data: &[u8]) -> Result<StoreOutcome, CsbError> {
        let width = data.len();
        if !(1..=8).contains(&width) || !width.is_power_of_two() || !addr.is_aligned(width as u64) {
            return Err(CsbError::BadStore { addr, width });
        }
        if !self.can_accept_store() {
            self.stats.busy_stalls += 1;
            self.sink
                .emit(Track::Csb, EventKind::CsbBusy { addr: addr.raw() });
            return Err(CsbError::Busy);
        }
        let base = addr.align_down(self.cfg.line as u64);
        let off = addr.offset_in(self.cfg.line as u64) as usize;
        self.stats.stores += 1;

        match &mut self.current {
            Some(line) if line.base == base && line.pid == pid => {
                line.mask.set_range(off, width);
                line.data[off..off + width].copy_from_slice(data);
                line.count += 1;
                self.sink.emit(
                    Track::Csb,
                    EventKind::CsbStore {
                        pid,
                        addr: addr.raw(),
                        width,
                        count: line.count,
                        reset: false,
                    },
                );
                Ok(StoreOutcome::Merged { count: line.count })
            }
            slot => {
                // Mismatch or cold buffer: clear (zero padding) and restart.
                self.stats.resets += 1;
                if slot.as_ref().is_some_and(|line| line.pid != pid) {
                    self.stats.cross_pid_resets += 1;
                }
                let mut line = LineBuf {
                    base,
                    pid,
                    mask: ByteMask::empty(),
                    data: [0u8; MAX_BLOCK],
                    count: 1,
                };
                line.mask.set_range(off, width);
                line.data[off..off + width].copy_from_slice(data);
                *slot = Some(line);
                self.sink.emit(
                    Track::Csb,
                    EventKind::CsbStore {
                        pid,
                        addr: addr.raw(),
                        width,
                        count: 1,
                        reset: true,
                    },
                );
                Ok(StoreOutcome::Reset)
            }
        }
    }

    /// Executes a conditional flush: process `pid` claims the line at `addr`
    /// holds exactly `expected` of its stores.
    ///
    /// On success the line is queued as an atomic burst for the system
    /// interface (retrieve it with
    /// [`ConditionalStoreBuffer::peek_transaction`]). On failure the buffer
    /// is cleared and nothing is issued.
    ///
    /// Callers should gate on [`ConditionalStoreBuffer::can_accept_flush`];
    /// a flush issued while the burst queue is full fails unconditionally
    /// (and still clears the buffer), mirroring hardware that cannot accept
    /// the commit.
    pub fn conditional_flush(&mut self, pid: Pid, addr: Addr, expected: u64) -> FlushOutcome {
        let base = addr.align_down(self.cfg.line as u64);
        self.sink.emit(
            Track::Csb,
            EventKind::CsbFlushAttempt {
                pid,
                addr: base.raw(),
                expected,
            },
        );
        let disturbed = self.faults.inject(FaultKind::FlushDisturb);
        if disturbed {
            self.fault_disturbs += 1;
            self.sink
                .emit(Track::Csb, EventKind::FlushDisturb { addr: base.raw() });
        }
        let ok = !disturbed
            && self.can_accept_flush()
            && self
                .current
                .as_ref()
                .is_some_and(|line| line.base == base && line.pid == pid && line.count == expected);
        let line = self.current.take();
        if !ok {
            self.stats.flush_failures += 1;
            self.sink.emit(
                Track::Csb,
                EventKind::CsbFlushOutcome {
                    success: false,
                    payload: 0,
                },
            );
            return FlushOutcome::Fail;
        }
        let line = line.expect("checked above");
        self.stats.flush_successes += 1;
        let payload_total = line.mask.count();
        self.sink.emit(
            Track::Csb,
            EventKind::CsbFlushOutcome {
                success: true,
                payload: payload_total as u64,
            },
        );
        self.stats.payload_bytes += payload_total as u64;
        if self.cfg.variable_burst {
            let pending = &mut self.pending;
            let bursts = &mut self.stats.bursts;
            decompose_into(line.mask, self.cfg.line, |c| {
                pending.push_back(PreparedTxn {
                    txn: Transaction::write(line.base.offset(c.offset as i64), c.size),
                    data: PayloadBuf::from_slice(&line.data[c.offset..c.offset + c.size]),
                });
                *bursts += 1;
            });
        } else {
            // Always a full line; unwritten bytes are zero padding.
            self.pending.push_back(PreparedTxn {
                txn: Transaction::write(line.base, self.cfg.line).payload(payload_total),
                data: PayloadBuf::from_slice(&line.data[..self.cfg.line]),
            });
            self.stats.bursts += 1;
        }
        FlushOutcome::Success
    }

    /// Clears the data register without issuing anything — the effect of a
    /// cold reset or a supervisor-initiated clear.
    pub fn clear(&mut self) {
        self.current = None;
    }

    /// Returns the next committed burst to present to the bus, if any.
    pub fn peek_transaction(&self) -> Option<&PreparedTxn> {
        self.pending.front()
    }

    /// Acknowledges that the bus accepted the burst most recently returned
    /// by [`ConditionalStoreBuffer::peek_transaction`].
    ///
    /// # Panics
    ///
    /// Panics if no burst was pending.
    pub fn transaction_accepted(&mut self) -> PreparedTxn {
        self.pending.pop_front().expect("no pending CSB burst")
    }

    /// Returns `true` if no committed burst is waiting for the bus.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }

    /// Committed bursts still queued for the bus — the CSB-side half of a
    /// transaction-granular drain horizon. Each pending burst costs
    /// exactly one bus grant, so `pending_bursts()` grants from now the
    /// CSB is drained and ([`ConditionalStoreBuffer::can_accept_flush`])
    /// flush capacity is free again; `0` is [`is_drained`].
    ///
    /// [`is_drained`]: ConditionalStoreBuffer::is_drained
    pub fn pending_bursts(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csb() -> ConditionalStoreBuffer {
        ConditionalStoreBuffer::new(CsbConfig::new(64)).unwrap()
    }

    fn dword(v: u64) -> [u8; 8] {
        v.to_le_bytes()
    }

    #[test]
    fn config_validation() {
        assert!(ConditionalStoreBuffer::new(CsbConfig::new(4)).is_err());
        assert!(ConditionalStoreBuffer::new(CsbConfig::new(96)).is_err());
        assert!(ConditionalStoreBuffer::new(CsbConfig::new(256)).is_err());
        let err = ConditionalStoreBuffer::new(CsbConfig::new(4)).unwrap_err();
        assert!(err.to_string().contains('4'));
    }

    #[test]
    fn stores_in_any_order_commit() {
        // §3.2: "combining stores can be issued in any order, since only the
        // total number of stores is needed for conflict detection."
        let mut c = csb();
        let line = Addr::new(0x1000);
        let order = [0i64, 5, 1, 7, 2, 6, 3, 4];
        for (n, &i) in order.iter().enumerate() {
            let out = c.store(1, line.offset(8 * i), &dword(i as u64)).unwrap();
            if n == 0 {
                assert_eq!(out, StoreOutcome::Reset);
            } else {
                assert_eq!(
                    out,
                    StoreOutcome::Merged {
                        count: n as u64 + 1
                    }
                );
            }
        }
        assert_eq!(c.conditional_flush(1, line, 8), FlushOutcome::Success);
        let t = c.transaction_accepted();
        assert_eq!(t.txn.size, 64);
        assert_eq!(t.txn.payload, 64);
        for i in 0..8usize {
            assert_eq!(&t.data[8 * i..8 * i + 8], &dword(i as u64));
        }
    }

    #[test]
    fn wrong_expected_count_fails() {
        let mut c = csb();
        let line = Addr::new(0x1000);
        c.store(1, line, &dword(1)).unwrap();
        c.store(1, line.offset(8), &dword(2)).unwrap();
        assert_eq!(c.conditional_flush(1, line, 3), FlushOutcome::Fail);
        // Buffer was cleared: restarting gives count 1 again.
        assert_eq!(c.store(1, line, &dword(1)).unwrap(), StoreOutcome::Reset);
        assert_eq!(c.stats().flush_failures, 1);
    }

    #[test]
    fn competing_pid_resets_and_original_flush_fails() {
        // The scenario narrated in §3.2: a process is interrupted before its
        // flush; the competitor's first store clears the buffer.
        let mut c = csb();
        let line = Addr::new(0x1000);
        for i in 0..4i64 {
            c.store(1, line.offset(8 * i), &dword(9)).unwrap();
        }
        assert_eq!(c.store(2, line, &dword(7)).unwrap(), StoreOutcome::Reset);
        assert_eq!(c.stats().cross_pid_resets, 1, "competitor reset counts");
        let out = c.conditional_flush(1, line, 4);
        assert_eq!(out, FlushOutcome::Fail);
        assert_eq!(out.register_value(4), 0);
        // And PID 2's own sequence still works.
        c.store(2, line.offset(8), &dword(8)).unwrap();
        // First store by pid 2 above was cleared by the failed flush, so
        // count restarted at 1.
        assert_eq!(c.conditional_flush(2, line, 1), FlushOutcome::Success);
    }

    #[test]
    fn different_line_same_pid_conflicts() {
        // §3.2: including the address detects conflicts between threads
        // sharing a PID.
        let mut c = csb();
        c.store(1, Addr::new(0x1000), &dword(1)).unwrap();
        assert_eq!(
            c.store(1, Addr::new(0x2000), &dword(2)).unwrap(),
            StoreOutcome::Reset
        );
        assert_eq!(
            c.conditional_flush(1, Addr::new(0x1000), 1),
            FlushOutcome::Fail
        );
    }

    #[test]
    fn partial_line_pads_with_zeroes() {
        let mut c = csb();
        let line = Addr::new(0x1000);
        c.store(1, line.offset(16), &dword(0xffff_ffff_ffff_ffff))
            .unwrap();
        assert_eq!(c.conditional_flush(1, line, 1), FlushOutcome::Success);
        let t = c.transaction_accepted();
        assert_eq!(t.txn.size, 64);
        assert_eq!(t.txn.payload, 8);
        assert!(t.data[..16].iter().all(|&b| b == 0));
        assert!(t.data[16..24].iter().all(|&b| b == 0xff));
        assert!(t.data[24..].iter().all(|&b| b == 0));
    }

    #[test]
    fn single_buffered_stalls_until_drained() {
        let mut c = csb();
        let line = Addr::new(0x1000);
        c.store(1, line, &dword(1)).unwrap();
        c.conditional_flush(1, line, 1);
        assert!(!c.can_accept_store());
        assert_eq!(c.store(1, line, &dword(2)), Err(CsbError::Busy));
        assert_eq!(c.stats().busy_stalls, 1);
        c.transaction_accepted();
        assert!(c.can_accept_store());
        assert!(c.store(1, line, &dword(2)).is_ok());
    }

    #[test]
    fn double_buffered_overlaps_flush_with_stores() {
        let mut c = ConditionalStoreBuffer::new(CsbConfig::new(64).double_buffered()).unwrap();
        let line = Addr::new(0x1000);
        c.store(1, line, &dword(1)).unwrap();
        c.conditional_flush(1, line, 1);
        // Burst still pending, but the second line buffer accepts stores.
        assert!(c.can_accept_store());
        c.store(1, line.offset(64), &dword(2)).unwrap();
        assert!(c.can_accept_flush());
        assert_eq!(
            c.conditional_flush(1, line.offset(64), 1),
            FlushOutcome::Success
        );
        // Both buffers now full: a third flush cannot be accepted.
        c.store(1, line.offset(128), &dword(3)).unwrap();
        assert!(!c.can_accept_flush());
        assert_eq!(
            c.conditional_flush(1, line.offset(128), 1),
            FlushOutcome::Fail
        );
        c.transaction_accepted();
        c.transaction_accepted();
        assert!(c.is_drained());
        assert_eq!(c.stats().flush_successes, 2);
    }

    #[test]
    fn variable_burst_emits_aligned_chunks() {
        let mut c = ConditionalStoreBuffer::new(CsbConfig::new(64).variable_burst()).unwrap();
        let line = Addr::new(0x1000);
        for i in 1..8i64 {
            c.store(1, line.offset(8 * i), &dword(i as u64)).unwrap();
        }
        assert_eq!(c.conditional_flush(1, line, 7), FlushOutcome::Success);
        let mut sizes = Vec::new();
        while c.peek_transaction().is_some() {
            sizes.push(c.transaction_accepted().txn.size);
        }
        assert_eq!(sizes, vec![8, 16, 32]);
        assert_eq!(c.stats().bursts, 3);
    }

    #[test]
    fn fault_hook_forces_flush_failures() {
        use csb_faults::FaultConfig;
        let mut c = csb();
        c.set_fault_hook(FaultInjector::enabled(
            FaultConfig::new(9)
                .flush_disturb_rate(1.0)
                .max_consecutive(2),
        ));
        let line = Addr::new(0x1000);
        // Two disturbed attempts, then the consecutive bound forces one
        // through — the retry loop the paper's software is written for.
        for attempt in 0..3 {
            c.store(1, line, &dword(attempt)).unwrap();
            let out = c.conditional_flush(1, line, 1);
            if attempt < 2 {
                assert_eq!(out, FlushOutcome::Fail, "attempt {attempt}");
                // Disturbance clears the buffer, like a real conflict.
                assert_eq!(c.store(1, line, &dword(0)).unwrap(), StoreOutcome::Reset);
                c.clear();
            } else {
                assert_eq!(out, FlushOutcome::Success);
            }
        }
        assert_eq!(c.fault_disturbs(), 2);
        assert_eq!(c.stats().flush_failures, 2);
        assert_eq!(c.stats().flush_successes, 1);
    }

    #[test]
    fn fault_hook_emits_disturb_events() {
        use csb_faults::FaultConfig;
        let mut c = csb();
        let sink = TraceSink::enabled();
        c.set_trace_sink(sink.clone());
        c.set_fault_hook(FaultInjector::enabled(
            FaultConfig::new(9).flush_disturb_rate(1.0),
        ));
        let line = Addr::new(0x1000);
        c.store(1, line, &dword(1)).unwrap();
        assert_eq!(c.conditional_flush(1, line, 1), FlushOutcome::Fail);
        let kinds: Vec<&'static str> = sink.snapshot().iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec!["csb.store", "csb.flush", "fault.disturb", "csb.flush.done"]
        );
    }

    #[test]
    fn bad_store_rejected() {
        let mut c = csb();
        assert!(matches!(
            c.store(1, Addr::new(0x1004), &dword(1)),
            Err(CsbError::BadStore { .. })
        ));
        assert!(matches!(
            c.store(1, Addr::new(0x1000), &[0u8; 3]),
            Err(CsbError::BadStore { .. })
        ));
        assert!(matches!(
            c.store(1, Addr::new(0x1000), &[]),
            Err(CsbError::BadStore { .. })
        ));
    }

    #[test]
    fn flush_on_empty_buffer_fails() {
        let mut c = csb();
        assert_eq!(
            c.conditional_flush(1, Addr::new(0x1000), 0),
            FlushOutcome::Fail
        );
    }

    #[test]
    fn clear_discards_state() {
        let mut c = csb();
        c.store(1, Addr::new(0x1000), &dword(1)).unwrap();
        c.clear();
        assert_eq!(
            c.conditional_flush(1, Addr::new(0x1000), 1),
            FlushOutcome::Fail
        );
    }

    #[test]
    fn repeated_store_to_same_byte_counts() {
        // The counter counts stores, not bytes: two stores to the same
        // doubleword give count 2 with 8 payload bytes.
        let mut c = csb();
        let line = Addr::new(0x1000);
        c.store(1, line, &dword(1)).unwrap();
        c.store(1, line, &dword(2)).unwrap();
        assert_eq!(c.conditional_flush(1, line, 2), FlushOutcome::Success);
        let t = c.transaction_accepted();
        assert_eq!(t.txn.payload, 8);
        assert_eq!(&t.data[..8], &dword(2));
    }

    #[test]
    fn register_value_semantics() {
        assert_eq!(FlushOutcome::Success.register_value(8), 8);
        assert_eq!(FlushOutcome::Fail.register_value(8), 0);
    }

    #[test]
    fn stats_display_summarizes_counters() {
        let mut c = csb();
        let line = Addr::new(0x1000);
        c.store(1, line, &dword(1)).unwrap();
        c.store(1, line.offset(8), &dword(2)).unwrap();
        c.conditional_flush(1, line, 2);
        let s = c.stats().to_string();
        assert_eq!(
            s,
            "csb: 2 stores (1 resets, 0 cross-pid), 1/1 flushes ok, 1 bursts, \
             16 payload bytes, 0 busy stalls"
        );
    }

    #[test]
    fn trace_sink_records_store_and_flush_lifecycle() {
        let mut c = csb();
        let sink = TraceSink::enabled();
        c.set_trace_sink(sink.clone());
        let line = Addr::new(0x1000);
        sink.set_now(5);
        c.store(1, line, &dword(1)).unwrap();
        c.store(1, line.offset(8), &dword(2)).unwrap();
        sink.set_now(9);
        c.conditional_flush(1, line.offset(8), 2);
        // Busy stall after the flush (single-buffered).
        c.store(1, line, &dword(3)).unwrap_err();
        let kinds: Vec<&'static str> = sink.snapshot().iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec![
                "csb.store",
                "csb.store",
                "csb.flush",
                "csb.flush.done",
                "csb.busy"
            ]
        );
        let events = sink.snapshot();
        assert_eq!(events[0].cycle, 5);
        assert!(matches!(
            events[0].kind,
            EventKind::CsbStore {
                reset: true,
                count: 1,
                ..
            }
        ));
        // The flush attempt reports the line-aligned address.
        assert!(matches!(
            events[2].kind,
            EventKind::CsbFlushAttempt {
                addr: 0x1000,
                expected: 2,
                ..
            }
        ));
        assert!(matches!(
            events[3].kind,
            EventKind::CsbFlushOutcome {
                success: true,
                payload: 16,
            }
        ));
        assert_eq!(events[4].cycle, 9);
    }

    #[test]
    fn error_display() {
        assert!(!CsbError::Busy.to_string().is_empty());
        let e = CsbError::BadStore {
            addr: Addr::new(4),
            width: 3,
        };
        assert!(e.to_string().contains("3B"));
    }

    #[test]
    fn pending_bursts_is_the_drain_horizon() {
        let mut c = ConditionalStoreBuffer::new(CsbConfig::new(64).double_buffered()).unwrap();
        let line = Addr::new(0x1000);
        assert_eq!(c.pending_bursts(), 0);
        c.store(1, line, &dword(1)).unwrap();
        assert_eq!(c.conditional_flush(1, line, 1), FlushOutcome::Success);
        c.store(1, line.offset(64), &dword(2)).unwrap();
        assert_eq!(
            c.conditional_flush(1, line.offset(64), 1),
            FlushOutcome::Success
        );
        // Double-buffered: two committed bursts queued, capacity now gone.
        assert_eq!(c.pending_bursts(), 2);
        assert!(!c.can_accept_flush());
        c.transaction_accepted();
        assert_eq!(c.pending_bursts(), 1);
        assert!(c.can_accept_flush());
        c.transaction_accepted();
        assert_eq!(c.pending_bursts(), 0);
        assert!(c.is_drained());
    }
}
