//! Byte-presence masks and natural-alignment burst decomposition.
//!
//! System buses in the modeled era transfer naturally aligned power-of-two
//! sizes only (§4.1: "All transactions must be naturally aligned, which
//! restricts the ability to combine stores"). When a combining buffer entry
//! drains, its present bytes must therefore be carved into such chunks —
//! e.g. seven consecutive doublewords starting at offset 8 become an 8-byte,
//! a 16-byte, and a 32-byte transaction, while eight doublewords starting at
//! offset 0 are a single 64-byte burst. This is the effect behind the
//! paper's observation that going from 7 to 8 doublewords *reduces* latency.

use serde::{Deserialize, Serialize};

/// Maximum supported combining block (the largest cache line studied).
pub const MAX_BLOCK: usize = 128;

/// One naturally aligned power-of-two chunk produced by [`decompose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Chunk {
    /// Byte offset within the block.
    pub offset: usize,
    /// Chunk size in bytes (power of two).
    pub size: usize,
}

/// A presence bitmask over a block of up to [`MAX_BLOCK`] bytes.
///
/// Bit *i* set means byte *i* of the block holds valid store data.
///
/// # Examples
///
/// ```
/// use csb_uncached::ByteMask;
///
/// let mut m = ByteMask::empty();
/// m.set_range(8, 8);
/// assert_eq!(m.count(), 8);
/// assert!(m.covers(8, 8));
/// assert!(!m.covers(0, 16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ByteMask(u128);

impl ByteMask {
    /// The empty mask.
    pub const fn empty() -> Self {
        ByteMask(0)
    }

    /// Mask with bytes `[offset, offset + len)` set.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds [`MAX_BLOCK`].
    pub fn range(offset: usize, len: usize) -> Self {
        let mut m = ByteMask::empty();
        m.set_range(offset, len);
        m
    }

    /// Sets bytes `[offset, offset + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds [`MAX_BLOCK`].
    pub fn set_range(&mut self, offset: usize, len: usize) {
        assert!(
            offset + len <= MAX_BLOCK,
            "range {offset}+{len} exceeds {MAX_BLOCK}"
        );
        if len == 0 {
            return;
        }
        let bits = if len == MAX_BLOCK {
            u128::MAX
        } else {
            ((1u128 << len) - 1) << offset
        };
        self.0 |= bits;
    }

    /// Returns `true` if every byte of `[offset, offset + len)` is set.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds [`MAX_BLOCK`].
    pub fn covers(&self, offset: usize, len: usize) -> bool {
        assert!(
            offset + len <= MAX_BLOCK,
            "range {offset}+{len} exceeds {MAX_BLOCK}"
        );
        if len == 0 {
            return true;
        }
        let bits = if len == MAX_BLOCK {
            u128::MAX
        } else {
            ((1u128 << len) - 1) << offset
        };
        self.0 & bits == bits
    }

    /// Number of present bytes.
    pub const fn count(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if no byte is present.
    pub const fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if byte `i` is present.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < MAX_BLOCK);
        self.0 >> i & 1 == 1
    }

    /// Raw bits (bit *i* = byte *i*).
    pub const fn bits(&self) -> u128 {
        self.0
    }

    /// Rebuilds a mask from [`ByteMask::bits`] (snapshot restore).
    pub const fn from_bits(bits: u128) -> Self {
        ByteMask(bits)
    }
}

impl std::ops::BitOr for ByteMask {
    type Output = ByteMask;
    fn bitor(self, rhs: ByteMask) -> ByteMask {
        ByteMask(self.0 | rhs.0)
    }
}

/// Decomposes a presence mask into the minimal greedy sequence of maximal
/// naturally aligned power-of-two chunks, capped at `max_chunk` bytes.
///
/// Chunks are returned in ascending offset order and cover exactly the set
/// bytes. Bytes that are present but cannot pad a larger aligned chunk are
/// emitted as smaller transactions — this models the series of single-beat
/// transfers a hardware combining buffer degrades to when software cannot
/// guarantee a full line.
///
/// # Panics
///
/// Panics if `max_chunk` is zero or not a power of two.
///
/// # Examples
///
/// ```
/// use csb_uncached::{decompose, ByteMask, Chunk};
///
/// // Doublewords 1..8 (bytes 8..64): 8B + 16B + 32B.
/// let chunks = decompose(ByteMask::range(8, 56), 64);
/// assert_eq!(
///     chunks,
///     vec![
///         Chunk { offset: 8, size: 8 },
///         Chunk { offset: 16, size: 16 },
///         Chunk { offset: 32, size: 32 },
///     ]
/// );
///
/// // A full aligned line is a single burst.
/// assert_eq!(decompose(ByteMask::range(0, 64), 64).len(), 1);
/// ```
pub fn decompose(mask: ByteMask, max_chunk: usize) -> Vec<Chunk> {
    let mut out = Vec::new();
    decompose_into(mask, max_chunk, |c| out.push(c));
    out
}

/// Streaming form of [`decompose`]: invokes `emit` for each chunk in
/// ascending offset order without allocating. The hot drain path uses this
/// to refill a reused scratch queue.
///
/// # Panics
///
/// Panics if `max_chunk` is zero or not a power of two.
pub fn decompose_into(mask: ByteMask, max_chunk: usize, mut emit: impl FnMut(Chunk)) {
    assert!(
        max_chunk > 0 && max_chunk.is_power_of_two(),
        "max_chunk {max_chunk} must be a nonzero power of two"
    );
    let mut bits = mask.bits();
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        let mut size = 1usize;
        // Grow while alignment holds, the doubled chunk stays within the
        // cap, and all of its bytes are present.
        while size < max_chunk {
            let next = size * 2;
            if !i.is_multiple_of(next) || i + next > MAX_BLOCK || !mask.covers(i, next) {
                break;
            }
            size = next;
        }
        emit(Chunk { offset: i, size });
        let clear = if size == MAX_BLOCK {
            u128::MAX
        } else {
            ((1u128 << size) - 1) << i
        };
        bits &= !clear;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_basics() {
        let m = ByteMask::range(0, 0);
        assert!(m.is_empty());
        let m = ByteMask::range(4, 4);
        assert_eq!(m.count(), 4);
        assert!(m.get(4) && m.get(7) && !m.get(3) && !m.get(8));
        assert!(m.covers(4, 4));
        assert!(m.covers(5, 2));
        assert!(!m.covers(4, 5));
        assert!(m.covers(0, 0));
        let full = ByteMask::range(0, MAX_BLOCK);
        assert_eq!(full.count(), MAX_BLOCK);
        assert!(full.covers(0, MAX_BLOCK));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn mask_bounds_checked() {
        ByteMask::range(120, 16);
    }

    #[test]
    fn or_merges() {
        let m = ByteMask::range(0, 8) | ByteMask::range(8, 8);
        assert!(m.covers(0, 16));
    }

    #[test]
    fn decompose_full_line() {
        assert_eq!(
            decompose(ByteMask::range(0, 64), 64),
            vec![Chunk {
                offset: 0,
                size: 64
            }]
        );
    }

    #[test]
    fn decompose_seven_dwords() {
        // The paper's 7-vs-8 dword effect: 7 dwords -> 3 transactions.
        let chunks = decompose(ByteMask::range(0, 56), 64);
        assert_eq!(
            chunks,
            vec![
                Chunk {
                    offset: 0,
                    size: 32
                },
                Chunk {
                    offset: 32,
                    size: 16
                },
                Chunk {
                    offset: 48,
                    size: 8
                },
            ]
        );
    }

    #[test]
    fn decompose_respects_cap() {
        // Same 56 bytes but capped at 16-byte chunks.
        let chunks = decompose(ByteMask::range(0, 56), 16);
        assert_eq!(chunks.len(), 4); // 16+16+16+8
        assert!(chunks.iter().all(|c| c.size <= 16));
    }

    #[test]
    fn decompose_single_bytes() {
        let mut m = ByteMask::empty();
        m.set_range(3, 1);
        m.set_range(9, 1);
        let chunks = decompose(m, 64);
        assert_eq!(
            chunks,
            vec![Chunk { offset: 3, size: 1 }, Chunk { offset: 9, size: 1 }]
        );
    }

    #[test]
    fn decompose_empty() {
        assert!(decompose(ByteMask::empty(), 64).is_empty());
    }

    #[test]
    fn decompose_max_block() {
        assert_eq!(
            decompose(ByteMask::range(0, 128), 128),
            vec![Chunk {
                offset: 0,
                size: 128
            }]
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn decompose_rejects_bad_cap() {
        decompose(ByteMask::range(0, 8), 24);
    }

    #[test]
    fn chunks_are_aligned_and_cover_exactly() {
        // Deterministic sweep over many masks; the proptest suite fuzzes more.
        for seed in 0..512u64 {
            let bits = (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) as u128) << (seed % 64);
            let mask = ByteMask(bits & ((1u128 << 64) - 1));
            let chunks = decompose(mask, 64);
            let mut rebuilt = ByteMask::empty();
            for c in &chunks {
                assert!(c.size.is_power_of_two());
                assert_eq!(c.offset % c.size, 0, "chunk {c:?} not naturally aligned");
                assert!(mask.covers(c.offset, c.size));
                assert!(!rebuilt.covers(c.offset, 1), "chunk overlap at {c:?}");
                rebuilt.set_range(c.offset, c.size);
            }
            assert_eq!(rebuilt, mask, "decomposition must cover exactly");
        }
    }
}
