//! Versioned binary snapshot format for the CSB simulator.
//!
//! The workspace's vendored `serde` shim serializes but cannot
//! deserialize derived types, so simulator snapshots and cache entries
//! use this hand-rolled format instead: a fixed-width little-endian
//! byte stream framed by an 8-byte magic, a format version, and a
//! trailing FNV-1a checksum over everything before it.
//!
//! Layout of a framed document:
//!
//! ```text
//! magic[8] | version u32 | payload ... | checksum u64
//! ```
//!
//! Every multi-byte integer is little-endian. Compound values are
//! length-prefixed (`u64` count) or tag-prefixed (`u8` discriminant for
//! options and enums). Components additionally drop named section tags
//! ([`SnapshotWriter::put_tag`]) into the stream; a reader that drifts
//! out of alignment fails on the next tag with the section's name
//! instead of silently misinterpreting bytes.
//!
//! Version discipline: any change to what a component writes — field
//! added, removed, reordered, or re-encoded — must bump the consumer's
//! format version (see `SNAPSHOT_FORMAT_VERSION` in `csb-core`). Readers
//! never attempt cross-version migration; a mismatched version is an
//! error the caller handles by re-simulating.

use std::fmt;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice — the checksum and key hash used
/// throughout the snapshot and cache layers.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// [`fnv1a`] over a string's UTF-8 bytes.
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// Incremental [`fnv1a`]: feed byte runs with [`Fnv1a::update`], read the
/// digest with [`Fnv1a::finish`]. Hashing N runs produces the same digest
/// as hashing their concatenation, so streaming callers (e.g. hashing a
/// `Debug` rendering as it is written) avoid materializing the input.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher in the empty-input state.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Write for Fnv1a {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// Why a snapshot or cache entry could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The document ends before the value being read.
    Truncated,
    /// The leading magic does not identify this document kind.
    BadMagic,
    /// The document's format version is not the one this build reads.
    Version {
        /// Version found in the document.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The trailing FNV-1a checksum does not match the content.
    Checksum,
    /// A section tag or value failed validation; the payload names the
    /// section or invariant that failed.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "bad snapshot magic"),
            SnapshotError::Version { found, expected } => {
                write!(f, "snapshot format version {found}, expected {expected}")
            }
            SnapshotError::Checksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Appends fixed-width little-endian values to a growing byte buffer.
/// Pair with [`SnapshotReader`]: every `put_x` call must be mirrored by
/// a `take_x` call in the same order.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty, unframed writer (for cache-entry payloads the caller
    /// frames itself via [`frame`]).
    pub fn new() -> Self {
        SnapshotWriter { buf: Vec::new() }
    }

    /// A writer pre-seeded with the document frame header: `magic`,
    /// then `version`. Finish with [`SnapshotWriter::finish`].
    pub fn framed(magic: [u8; 8], version: u32) -> Self {
        let mut w = SnapshotWriter {
            buf: Vec::with_capacity(256),
        };
        w.buf.extend_from_slice(&magic);
        w.put_u32(version);
        w
    }

    /// Appends the trailing checksum and returns the finished document.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.put_u64(sum);
        self.buf
    }

    /// Bytes written so far (before the checksum).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drops a named section tag into the stream. The matching
    /// [`SnapshotReader::take_tag`] turns any encode/decode misalignment
    /// into a named error at the section boundary.
    pub fn put_tag(&mut self, name: &str) {
        self.put_u32(fnv1a_str(name) as u32);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends an `Option<u64>` as a tag byte plus the value when set.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
        }
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends raw bytes with no length prefix (fixed-width payloads
    /// whose length both sides know).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Reads values back in the order a [`SnapshotWriter`] wrote them.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over an unframed payload (cache-entry bodies).
    pub fn new(data: &'a [u8]) -> Self {
        SnapshotReader { data, pos: 0 }
    }

    /// Validates a framed document — magic, version, trailing checksum —
    /// and returns a reader positioned at the start of the payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`] / [`SnapshotError::Version`] /
    /// [`SnapshotError::Checksum`] / [`SnapshotError::Truncated`] per
    /// which part of the frame fails.
    pub fn framed(
        data: &'a [u8],
        magic: [u8; 8],
        version: u32,
    ) -> Result<SnapshotReader<'a>, SnapshotError> {
        // magic + version + checksum is the minimum well-formed document.
        if data.len() < 8 + 4 + 8 {
            return Err(SnapshotError::Truncated);
        }
        if data[..8] != magic {
            return Err(SnapshotError::BadMagic);
        }
        let (body, sum_bytes) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte split"));
        if fnv1a(body) != stored {
            return Err(SnapshotError::Checksum);
        }
        let mut r = SnapshotReader { data: body, pos: 8 };
        let found = r.take_u32()?;
        if found != version {
            return Err(SnapshotError::Version {
                found,
                expected: version,
            });
        }
        Ok(r)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails with [`SnapshotError::Corrupt`] naming the document if any
    /// payload bytes remain unread — the end-of-decode sanity check.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] when trailing bytes remain.
    pub fn expect_end(&self, what: &str) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{what}: {} trailing byte(s)",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Verifies the next section tag matches `name`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] naming the section on mismatch.
    pub fn take_tag(&mut self, name: &str) -> Result<(), SnapshotError> {
        let found = self.take_u32()?;
        if found != fnv1a_str(name) as u32 {
            return Err(SnapshotError::Corrupt(format!("section tag {name:?}")));
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of document.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte, rejecting values other than `0`/`1`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`].
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of document.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte take"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of document.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte take"),
        ))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of document.
    pub fn take_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte take"),
        ))
    }

    /// Reads a `usize` written by [`SnapshotWriter::put_usize`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`] when the
    /// value does not fit this platform's `usize`.
    pub fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.take_u64()?)
            .map_err(|_| SnapshotError::Corrupt("usize overflow".to_string()))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of document.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads an `Option<u64>` written by [`SnapshotWriter::put_opt_u64`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`].
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_u64()?)),
            b => Err(SnapshotError::Corrupt(format!("option tag {b}"))),
        }
    }

    /// Reads a length-prefixed byte string, borrowed from the document.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of document.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.take_usize()?;
        self.take(n)
    }

    /// Reads `n` raw bytes (fixed-width payloads).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of document.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`] on
    /// invalid UTF-8.
    pub fn take_str(&mut self) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.take_bytes()?)
            .map_err(|_| SnapshotError::Corrupt("invalid UTF-8".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 8] = *b"CSBTEST\0";

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_str("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn round_trips_every_primitive() {
        let mut w = SnapshotWriter::framed(MAGIC, 3);
        w.put_tag("prims");
        w.put_u8(0xab);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_usize(123_456);
        w.put_f64(3.875);
        w.put_opt_u64(None);
        w.put_opt_u64(Some(7));
        w.put_bytes(b"payload");
        w.put_raw(&[1, 2, 3]);
        w.put_str("snap");
        let doc = w.finish();

        let mut r = SnapshotReader::framed(&doc, MAGIC, 3).unwrap();
        r.take_tag("prims").unwrap();
        assert_eq!(r.take_u8().unwrap(), 0xab);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_usize().unwrap(), 123_456);
        assert_eq!(r.take_f64().unwrap(), 3.875);
        assert_eq!(r.take_opt_u64().unwrap(), None);
        assert_eq!(r.take_opt_u64().unwrap(), Some(7));
        assert_eq!(r.take_bytes().unwrap(), b"payload");
        assert_eq!(r.take_raw(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.take_str().unwrap(), "snap");
        r.expect_end("test doc").unwrap();
    }

    #[test]
    fn frame_rejects_tampering() {
        let mut w = SnapshotWriter::framed(MAGIC, 1);
        w.put_u64(99);
        let doc = w.finish();

        // Wrong magic.
        assert_eq!(
            SnapshotReader::framed(&doc, *b"WRONGMAG", 1).unwrap_err(),
            SnapshotError::BadMagic
        );
        // Wrong version (checksum still valid).
        assert!(matches!(
            SnapshotReader::framed(&doc, MAGIC, 2).unwrap_err(),
            SnapshotError::Version {
                found: 1,
                expected: 2
            }
        ));
        // One flipped payload bit fails the checksum.
        let mut bad = doc.clone();
        bad[13] ^= 0x40;
        assert_eq!(
            SnapshotReader::framed(&bad, MAGIC, 1).unwrap_err(),
            SnapshotError::Checksum
        );
        // Truncation below the minimum frame.
        assert_eq!(
            SnapshotReader::framed(&doc[..10], MAGIC, 1).unwrap_err(),
            SnapshotError::Truncated
        );
    }

    #[test]
    fn misaligned_reads_fail_on_tags() {
        let mut w = SnapshotWriter::framed(MAGIC, 1);
        w.put_tag("alpha");
        w.put_u64(1);
        w.put_tag("beta");
        let doc = w.finish();
        let mut r = SnapshotReader::framed(&doc, MAGIC, 1).unwrap();
        r.take_tag("alpha").unwrap();
        // Reading the wrong width desynchronizes; the next tag catches it.
        let _ = r.take_u32().unwrap();
        assert!(matches!(
            r.take_tag("beta").unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn reads_past_the_end_are_truncated() {
        let mut r = SnapshotReader::new(&[1, 2]);
        assert_eq!(r.take_u64().unwrap_err(), SnapshotError::Truncated);
        assert_eq!(r.take_u8().unwrap(), 1);
        assert_eq!(r.take_raw(2).unwrap_err(), SnapshotError::Truncated);
    }
}
