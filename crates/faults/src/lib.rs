//! Seeded, deterministic fault injection for the CSB simulator.
//!
//! The CSB's conditional flush is an *optimistic* protocol: the paper's
//! lock-free I/O claim rests on software retrying a flush that a
//! competing access disturbed. To quantify how that optimism degrades,
//! this crate provides a [`FaultSchedule`]: a reproducible schedule of
//! injected faults derived entirely from a `u64` seed plus per-kind rate
//! and window parameters — no wall clock, no global RNG, no
//! injection-site state beyond a per-kind ordinal counter.
//!
//! # Determinism
//!
//! Each fault site asks the schedule one question: *should the n-th
//! event of kind K fault?* The answer is a pure function of
//! `(seed, K, n)` (a SplitMix64 hash compared against the kind's rate
//! threshold), so the decision stream is invariant under anything that
//! preserves event *order*: the event-driven fast-forward path, warm
//! simulator reuse, and `--jobs N` parallel sweeps all see byte-identical
//! fault schedules. Raising the rate only ever *adds* fault ordinals
//! (the hash is compared against a larger threshold), which is what makes
//! success-rate curves monotone in the rate for retry policies that probe
//! a fixed ordinal prefix.
//!
//! A disabled [`FaultInjector`] (the default) costs one branch per hook,
//! mirroring the `csb-obs` trace-sink design, so a zero-fault run is
//! byte-identical to a build without the layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The kinds of fault the schedule can inject, each with an independent
/// ordinal stream and rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A bus transaction completes with an error status: the slot (and
    /// its occupancy) is consumed but nothing is delivered, and the
    /// master must re-arbitrate. Bounded hardware retry comes from
    /// [`FaultConfig::max_consecutive`].
    BusError,
    /// The target device answers a write with busy/NACK: the bus carried
    /// the transaction but the payload is refused and the master retries.
    DeviceNack,
    /// A conditional flush is disturbed (as if a competing access hit
    /// the buffered line), forcing flush-failure semantics without a
    /// second processor.
    FlushDisturb,
}

impl FaultKind {
    const ALL: [FaultKind; 3] = [
        FaultKind::BusError,
        FaultKind::DeviceNack,
        FaultKind::FlushDisturb,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::BusError => 0,
            FaultKind::DeviceNack => 1,
            FaultKind::FlushDisturb => 2,
        }
    }

    /// Per-kind salt so the three ordinal streams are independent even
    /// under the same seed.
    fn salt(self) -> u64 {
        match self {
            FaultKind::BusError => 0x6275_735f_6572_7221, // "bus_err!"
            FaultKind::DeviceNack => 0x6465_765f_6e61_636b, // "dev_nack"
            FaultKind::FlushDisturb => 0x666c_7573_685f_7821, // "flush_x!"
        }
    }

    /// Stable lower-case name, used for trace/report labels.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::BusError => "bus_error",
            FaultKind::DeviceNack => "device_nack",
            FaultKind::FlushDisturb => "flush_disturb",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Declarative description of a fault schedule.
///
/// Rates are probabilities in `[0, 1]` applied independently to each
/// ordinal of the kind's event stream. The optional window restricts
/// injection to an ordinal range, and `max_consecutive` bounds how many
/// faults in a row a single kind may produce (modelling bounded hardware
/// retry: the K+1-th consecutive attempt is forced to succeed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the whole schedule. The same seed and parameters always
    /// reproduce the same fault decisions.
    pub seed: u64,
    /// Fault probability per bus transaction issue.
    pub bus_error_rate: f64,
    /// Fault probability per device write delivery.
    pub device_nack_rate: f64,
    /// Fault probability per conditional-flush attempt.
    pub flush_disturb_rate: f64,
    /// Upper bound on consecutive injected faults per kind; `0` means
    /// unbounded. With a bound K, any run of injected faults is forced
    /// to end after K, so bounded hardware retry always terminates.
    pub max_consecutive: u32,
    /// Restrict injection to ordinals in `[start, start + len)` of each
    /// kind's stream; `None` leaves every ordinal eligible.
    pub window: Option<FaultWindow>,
}

/// An ordinal window `[start, start + len)` limiting when a schedule is
/// active within each kind's event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First eligible ordinal.
    pub start: u64,
    /// Number of eligible ordinals.
    pub len: u64,
}

impl FaultConfig {
    /// A schedule with the given seed and all rates zero.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            bus_error_rate: 0.0,
            device_nack_rate: 0.0,
            flush_disturb_rate: 0.0,
            max_consecutive: 0,
            window: None,
        }
    }

    /// Sets the bus-transaction error rate.
    #[must_use]
    pub fn bus_error_rate(mut self, rate: f64) -> Self {
        self.bus_error_rate = rate;
        self
    }

    /// Sets the device busy/NACK rate.
    #[must_use]
    pub fn device_nack_rate(mut self, rate: f64) -> Self {
        self.device_nack_rate = rate;
        self
    }

    /// Sets the conditional-flush disturbance rate.
    #[must_use]
    pub fn flush_disturb_rate(mut self, rate: f64) -> Self {
        self.flush_disturb_rate = rate;
        self
    }

    /// Bounds consecutive injected faults per kind (`0` = unbounded).
    #[must_use]
    pub fn max_consecutive(mut self, bound: u32) -> Self {
        self.max_consecutive = bound;
        self
    }

    /// Restricts injection to an ordinal window of each kind's stream.
    #[must_use]
    pub fn window(mut self, start: u64, len: u64) -> Self {
        self.window = Some(FaultWindow { start, len });
        self
    }

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::BusError => self.bus_error_rate,
            FaultKind::DeviceNack => self.device_nack_rate,
            FaultKind::FlushDisturb => self.flush_disturb_rate,
        }
    }

    /// `true` if no kind can ever fault (the schedule is a no-op).
    pub fn is_zero(&self) -> bool {
        FaultKind::ALL.iter().all(|&k| self.rate(k) <= 0.0)
    }
}

/// Injection counts per kind, plus how many decisions were taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Decisions asked per kind (the ordinal counters).
    pub checks: [u64; 3],
    /// Faults injected per kind.
    pub injected: [u64; 3],
}

impl FaultStats {
    /// Decisions asked for `kind`.
    pub fn checks(&self, kind: FaultKind) -> u64 {
        self.checks[kind.index()]
    }

    /// Faults injected for `kind`.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Total faults injected across all kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }
}

#[derive(Debug)]
struct Shared {
    cfg: FaultConfig,
    /// Precomputed 53-bit thresholds per kind.
    thresholds: [u64; 3],
    stats: FaultStats,
    /// Current run length of consecutive injected faults per kind.
    consecutive: [u32; 3],
}

impl Shared {
    fn new(cfg: FaultConfig) -> Self {
        let mut thresholds = [0u64; 3];
        for &k in &FaultKind::ALL {
            thresholds[k.index()] = threshold(cfg.rate(k));
        }
        Shared {
            cfg,
            thresholds,
            stats: FaultStats::default(),
            consecutive: [0; 3],
        }
    }

    fn inject(&mut self, kind: FaultKind) -> bool {
        let i = kind.index();
        let ordinal = self.stats.checks[i];
        self.stats.checks[i] += 1;
        if let Some(w) = self.cfg.window {
            if ordinal < w.start || ordinal - w.start >= w.len {
                self.consecutive[i] = 0;
                return false;
            }
        }
        if self.cfg.max_consecutive > 0 && self.consecutive[i] >= self.cfg.max_consecutive {
            self.consecutive[i] = 0;
            return false;
        }
        let h =
            splitmix64(self.cfg.seed ^ kind.salt() ^ ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let fault = (h >> 11) < self.thresholds[i];
        if fault {
            self.stats.injected[i] += 1;
            self.consecutive[i] += 1;
        } else {
            self.consecutive[i] = 0;
        }
        fault
    }
}

/// A cloneable handle onto one shared fault schedule.
///
/// Every fault site (the system bus, the CSB, the simulator's delivery
/// path) holds an injector; the default handle is *disabled* and every
/// [`FaultInjector::inject`] call on it is a single branch returning
/// `false`. The simulator creates one enabled injector from a
/// [`FaultConfig`] and installs clones into the components, exactly like
/// the trace-sink pattern. Handles are `Rc`-based and deliberately not
/// `Send`: a simulator and all its components live on one worker thread.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    shared: Option<Rc<RefCell<Shared>>>,
}

impl FaultInjector {
    /// A disabled handle: every decision is "no fault" at the cost of one
    /// branch.
    pub fn disabled() -> Self {
        FaultInjector { shared: None }
    }

    /// An enabled injector following `cfg`'s schedule from ordinal zero.
    pub fn enabled(cfg: FaultConfig) -> Self {
        FaultInjector {
            shared: Some(Rc::new(RefCell::new(Shared::new(cfg)))),
        }
    }

    /// `true` if this handle can ever inject a fault.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Consumes the next ordinal of `kind`'s stream and reports whether
    /// that event faults. Disabled handles always answer `false`.
    #[inline]
    pub fn inject(&self, kind: FaultKind) -> bool {
        match &self.shared {
            Some(s) => s.borrow_mut().inject(kind),
            None => false,
        }
    }

    /// Snapshot of the ordinal counters and injection counts.
    pub fn stats(&self) -> FaultStats {
        self.shared
            .as_ref()
            .map_or(FaultStats::default(), |s| s.borrow().stats)
    }

    /// The schedule's configuration, if enabled.
    pub fn config(&self) -> Option<FaultConfig> {
        self.shared.as_ref().map(|s| s.borrow().cfg)
    }

    /// Current run lengths of consecutive injected faults per kind
    /// (snapshot support; all zero when disabled).
    pub fn consecutive_runs(&self) -> [u32; 3] {
        self.shared
            .as_ref()
            .map_or([0; 3], |s| s.borrow().consecutive)
    }

    /// Overwrites the ordinal counters, injection counts, and consecutive
    /// run lengths on an enabled handle (snapshot restore: the schedule is
    /// a pure function of `(seed, kind, ordinal)`, so repositioning the
    /// counters replays the stream from exactly where a saved run stood).
    /// No-op when disabled.
    pub fn restore_counters(&self, stats: FaultStats, consecutive: [u32; 3]) {
        if let Some(s) = &self.shared {
            let mut s = s.borrow_mut();
            s.stats = stats;
            s.consecutive = consecutive;
        }
    }

    /// Rewinds the schedule to ordinal zero and clears the statistics
    /// (the simulator's warm-reset path). The seed and rates are kept, so
    /// a reset schedule replays the same decisions.
    pub fn reset(&self) {
        if let Some(s) = &self.shared {
            let mut s = s.borrow_mut();
            s.stats = FaultStats::default();
            s.consecutive = [0; 3];
        }
    }
}

/// Converts a probability to a 53-bit integer threshold so the decision
/// compare is exact and platform-independent.
fn threshold(rate: f64) -> u64 {
    const ONE: f64 = (1u64 << 53) as f64;
    let r = rate.clamp(0.0, 1.0);
    // Round up so rate 1.0 maps to the full 53-bit range and any nonzero
    // rate has a nonzero threshold.
    (r * ONE).ceil() as u64
}

/// SplitMix64: the standard 64-bit finalizer-style mixer (public domain,
/// Vigna). Pure function of its input; also used by the vendored `rand`
/// shim for seeding.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injects_nothing_and_counts_nothing() {
        let f = FaultInjector::disabled();
        for _ in 0..100 {
            assert!(!f.inject(FaultKind::BusError));
            assert!(!f.inject(FaultKind::FlushDisturb));
        }
        assert_eq!(f.stats(), FaultStats::default());
        assert!(!f.is_enabled());
    }

    #[test]
    fn zero_rate_schedule_never_faults_but_counts_ordinals() {
        let f = FaultInjector::enabled(FaultConfig::new(42));
        for _ in 0..1000 {
            assert!(!f.inject(FaultKind::BusError));
        }
        let s = f.stats();
        assert_eq!(s.checks(FaultKind::BusError), 1000);
        assert_eq!(s.total_injected(), 0);
    }

    #[test]
    fn rate_one_always_faults_until_consecutive_bound() {
        let f = FaultInjector::enabled(
            FaultConfig::new(7)
                .flush_disturb_rate(1.0)
                .max_consecutive(3),
        );
        let pattern: Vec<bool> = (0..8).map(|_| f.inject(FaultKind::FlushDisturb)).collect();
        // Three faults, one forced success, repeating.
        assert_eq!(
            pattern,
            vec![true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn same_seed_reproduces_and_different_seeds_differ() {
        let run = |seed: u64| -> Vec<bool> {
            let f = FaultInjector::enabled(FaultConfig::new(seed).bus_error_rate(0.5));
            (0..256).map(|_| f.inject(FaultKind::BusError)).collect()
        };
        assert_eq!(run(1234), run(1234));
        assert_ne!(run(1234), run(1235));
    }

    #[test]
    fn kinds_have_independent_streams() {
        let f = FaultInjector::enabled(
            FaultConfig::new(99)
                .bus_error_rate(0.5)
                .device_nack_rate(0.5),
        );
        let bus: Vec<bool> = (0..128).map(|_| f.inject(FaultKind::BusError)).collect();
        let dev: Vec<bool> = (0..128).map(|_| f.inject(FaultKind::DeviceNack)).collect();
        assert_ne!(bus, dev);
        let s = f.stats();
        assert_eq!(s.checks(FaultKind::BusError), 128);
        assert_eq!(s.checks(FaultKind::DeviceNack), 128);
    }

    #[test]
    fn raising_the_rate_only_adds_fault_ordinals() {
        let faults_at = |rate: f64| -> Vec<u64> {
            let f = FaultInjector::enabled(FaultConfig::new(5).flush_disturb_rate(rate));
            (0..512u64)
                .filter(|_| f.inject(FaultKind::FlushDisturb))
                .collect()
        };
        let low = faults_at(0.2);
        let high = faults_at(0.6);
        assert!(low.len() < high.len());
        for o in &low {
            assert!(high.contains(o), "ordinal {o} faulted at 0.2 but not 0.6");
        }
    }

    #[test]
    fn window_restricts_injection() {
        let f = FaultInjector::enabled(FaultConfig::new(11).flush_disturb_rate(1.0).window(10, 5));
        let fired: Vec<u64> = (0..32u64)
            .filter(|_| f.inject(FaultKind::FlushDisturb))
            .collect();
        assert_eq!(fired, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn reset_replays_the_same_schedule() {
        let f = FaultInjector::enabled(FaultConfig::new(77).bus_error_rate(0.3));
        let first: Vec<bool> = (0..64).map(|_| f.inject(FaultKind::BusError)).collect();
        f.reset();
        assert_eq!(f.stats(), FaultStats::default());
        let second: Vec<bool> = (0..64).map(|_| f.inject(FaultKind::BusError)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn clones_share_one_schedule() {
        let a = FaultInjector::enabled(FaultConfig::new(3).bus_error_rate(1.0).max_consecutive(2));
        let b = a.clone();
        assert!(a.inject(FaultKind::BusError));
        assert!(b.inject(FaultKind::BusError));
        assert!(!a.inject(FaultKind::BusError)); // bound reached via both handles
        assert_eq!(a.stats().checks(FaultKind::BusError), 3);
    }

    #[test]
    fn rate_bounds_are_exact() {
        assert_eq!(threshold(0.0), 0);
        assert_eq!(threshold(1.0), 1 << 53);
        assert_eq!(threshold(-1.0), 0);
        assert_eq!(threshold(2.0), 1 << 53);
        assert!(threshold(1e-18) > 0);
    }

    #[test]
    fn is_zero_reflects_rates() {
        assert!(FaultConfig::new(0).is_zero());
        assert!(!FaultConfig::new(0).device_nack_rate(0.01).is_zero());
    }
}
