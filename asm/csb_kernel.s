! The conditional-store-buffer access sequence from the paper's Section 3.2,
! runnable with: cargo run -p csb-bench --bin explore -- --asm asm/csb_kernel.s
    set 0x20000000, %o1     ! combining window
    fset 0x4045000000000000, %f0
    fset 0x4049000000000000, %f10
    fset 0x404c800000000000, %f12
.RETRY:
    set 8, %l4              ! expected value
    std %f0,  [%o1]         ! store 8 dwords in any order
    std %f10, [%o1+40]
    std %f0,  [%o1+16]
    std %f10, [%o1+24]
    std %f12, [%o1+32]
    std %f0,  [%o1+48]
    std %f10, [%o1+56]
    std %f12, [%o1+8]
    swap [%o1], %l4         ! conditional flush
    cmp %l4, 8              ! compare values
    bnz .RETRY              ! retry on failure
    halt
