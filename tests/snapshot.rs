//! Differential tests for snapshot/resume and the sweep-point cache.
//!
//! A snapshot taken at an arbitrary cycle — mid-flush, mid-bus-
//! transaction, under an active fault schedule, mid-slice in a
//! multi-process run — must restore to a machine that continues
//! **byte-identically** to one that never stopped, on both the naive and
//! fast-forward loops. The cache tests check the content-addressing
//! contract: a warm sweep is all hits with identical values, a corrupted
//! entry is detected and transparently re-simulated, and changing one
//! point's configuration invalidates exactly that point.

use std::sync::{Arc, Mutex};

use csb_core::experiments::runner::{run_values, PointSpec, PointWork};
use csb_core::experiments::Scheme;
use csb_core::multiproc::{MultiSim, SwitchPolicy};
use csb_core::workloads::{self, RetryPolicy, StoreOrder};
use csb_core::{cache, FaultConfig, RestoreError, SimConfig, SimError, Simulator, WatchdogConfig};
use csb_isa::Program;
use proptest::prelude::*;

const LIMIT: u64 = 2_000_000;

/// Runs `(cfg, program)` uninterrupted, and again with a snapshot/restore
/// boundary at cycle `snap_at`; asserts the resumed machine's summary,
/// CSB stats, device log, and fault counters are byte-identical, and that
/// the donor simulator (the one snapshotted) also finishes identically.
fn assert_snapshot_differential(
    cfg: &SimConfig,
    program: &Program,
    snap_at: u64,
    fast_forward: bool,
    faults: Option<FaultConfig>,
) {
    let mut whole = Simulator::new(cfg.clone(), program.clone()).expect("config valid");
    whole.set_fast_forward(fast_forward);
    whole.set_faults(faults);
    let expected = whole.run(LIMIT).expect("uninterrupted run completes");

    let mut donor = Simulator::new(cfg.clone(), program.clone()).expect("config valid");
    donor.set_fast_forward(fast_forward);
    donor.set_faults(faults);
    donor.run_to(snap_at).expect("run to snapshot cycle");
    let bytes = donor.snapshot();

    let mut resumed =
        Simulator::restore(cfg.clone(), program.clone(), &bytes).expect("snapshot restores");
    let got = resumed.run(LIMIT).expect("resumed run completes");

    let ctx = format!("snap_at={snap_at} ff={fast_forward}");
    assert_eq!(
        serde_json::to_string(&got).unwrap(),
        serde_json::to_string(&expected).unwrap(),
        "{ctx}: resumed summary must be byte-identical"
    );
    assert_eq!(
        resumed.csb_stats(),
        whole.csb_stats(),
        "{ctx}: CSB stats must match"
    );
    assert_eq!(
        serde_json::to_string(resumed.device()).unwrap(),
        serde_json::to_string(whole.device()).unwrap(),
        "{ctx}: device log must be byte-identical"
    );
    assert_eq!(
        format!("{:?}", resumed.fault_stats()),
        format!("{:?}", whole.fault_stats()),
        "{ctx}: fault counters must match"
    );

    // Snapshotting is non-destructive: the donor finishes identically too.
    let donor_summary = donor.run(LIMIT).expect("donor continues");
    assert_eq!(
        serde_json::to_string(&donor_summary).unwrap(),
        serde_json::to_string(&expected).unwrap(),
        "{ctx}: donor must be unaffected by taking a snapshot"
    );
}

#[test]
fn snapshot_restore_on_figure_workloads() {
    let cfg = SimConfig::default();
    let csb = workloads::store_bandwidth(256, &cfg, workloads::StorePath::Csb).unwrap();
    let uncached = workloads::store_bandwidth(128, &cfg, workloads::StorePath::Uncached).unwrap();
    // Snapshot cycles chosen to land mid-run: combining stores in flight,
    // bursts mid-drain on the bus, flushes pending.
    for &snap_at in &[1, 17, 100, 250, 1_000] {
        for ff in [false, true] {
            assert_snapshot_differential(&cfg, &csb, snap_at, ff, None);
            assert_snapshot_differential(&cfg, &uncached, snap_at, ff, None);
        }
    }
}

#[test]
fn snapshot_restore_under_active_fault_schedule() {
    let cfg = SimConfig::default();
    let program = workloads::csb_sequence_with_policy(
        8,
        RetryPolicy::Backoff {
            attempts: 12,
            base: 32,
            max: 1024,
            seed: 11,
        },
        &cfg,
    )
    .unwrap();
    let faults = FaultConfig::new(0x5eed)
        .flush_disturb_rate(0.5)
        .bus_error_rate(0.125)
        .device_nack_rate(0.125);
    // Mid-retry snapshots: the fault ordinal streams must reposition
    // exactly, or the schedule replays differently after restore.
    for &snap_at in &[1, 40, 150, 700] {
        for ff in [false, true] {
            assert_snapshot_differential(&cfg, &program, snap_at, ff, Some(faults));
        }
    }
}

#[test]
fn snapshot_preserves_trace_stream_as_concatenation() {
    let cfg = SimConfig::default();
    let program = workloads::store_bandwidth(256, &cfg, workloads::StorePath::Csb).unwrap();

    let mut whole = Simulator::new(cfg.clone(), program.clone()).unwrap();
    whole.enable_tracing();
    whole.run(LIMIT).unwrap();
    let uninterrupted = whole.trace_events();

    let mut donor = Simulator::new(cfg.clone(), program.clone()).unwrap();
    donor.enable_tracing();
    donor.run_to(120).unwrap();
    let pre = donor.trace_events();
    let bytes = donor.snapshot();
    let mut resumed = Simulator::restore(cfg, program, &bytes).unwrap();
    resumed.run(LIMIT).unwrap();
    let post = resumed.trace_events();

    let mut concat = pre;
    concat.extend(post);
    assert_eq!(
        concat, uninterrupted,
        "pre-snapshot + post-restore events must equal the uninterrupted stream"
    );
}

#[test]
fn snapshot_restore_mid_slice_in_multisim() {
    let cfg = SimConfig::default();
    let programs = vec![
        workloads::csb_worker(4, 8, 0, &cfg).unwrap(),
        workloads::csb_worker(4, 8, 1, &cfg).unwrap(),
    ];
    for policy in [
        SwitchPolicy::Fixed(60),
        SwitchPolicy::Backoff { base: 6, max: 4096 },
    ] {
        let mut whole = MultiSim::new(cfg.clone(), programs.clone(), policy).unwrap();
        let expected = whole.run(10_000_000).unwrap();

        // Drive the donor into the middle of the run (CycleLimit is the
        // documented bounded-run return), snapshot mid-slice, restore.
        let mut donor = MultiSim::new(cfg.clone(), programs.clone(), policy).unwrap();
        match donor.run(150) {
            Err(SimError::CycleLimit { .. }) => {}
            other => panic!("expected mid-run CycleLimit, got {other:?}"),
        }
        let bytes = donor.snapshot();
        let mut resumed = MultiSim::restore(cfg.clone(), programs.clone(), policy, &bytes).unwrap();
        let got = resumed.run(10_000_000).unwrap();
        assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(&expected).unwrap(),
            "{policy:?}: resumed multi-process run must be byte-identical"
        );
        assert_eq!(
            serde_json::to_string(resumed.simulator().device()).unwrap(),
            serde_json::to_string(whole.simulator().device()).unwrap(),
            "{policy:?}: device log must be byte-identical"
        );
    }
}

#[test]
fn restore_rejects_mismatch_and_corruption() {
    let cfg = SimConfig::default();
    let program = workloads::store_bandwidth(64, &cfg, workloads::StorePath::Csb).unwrap();
    let mut sim = Simulator::new(cfg.clone(), program.clone()).unwrap();
    sim.run_to(50).unwrap();
    let bytes = sim.snapshot();

    // Different program.
    let other = workloads::store_bandwidth(128, &cfg, workloads::StorePath::Csb).unwrap();
    assert!(matches!(
        Simulator::restore(cfg.clone(), other, &bytes),
        Err(RestoreError::ProgramMismatch)
    ));

    // Different configuration.
    let other_cfg = SimConfig::default().line_size(32);
    assert!(matches!(
        Simulator::restore(other_cfg, program.clone(), &bytes),
        Err(RestoreError::ConfigMismatch)
    ));

    // Flipped byte fails the checksum.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    assert!(matches!(
        Simulator::restore(cfg.clone(), program.clone(), &corrupt),
        Err(RestoreError::Snapshot(_))
    ));

    // Truncation fails too.
    assert!(matches!(
        Simulator::restore(cfg, program, &bytes[..bytes.len() / 2]),
        Err(RestoreError::Snapshot(_))
    ));
}

#[test]
fn snapshot_respects_watchdog_state() {
    // A snapshot taken shortly before a livelock fires must, after
    // restore, still fire at the identical cycle with the identical
    // report.
    let cfg = SimConfig::default();
    let program = workloads::csb_sequence_with_policy(8, RetryPolicy::NaiveSpin, &cfg).unwrap();
    let faults = FaultConfig::new(3).flush_disturb_rate(1.0);

    let run_whole = |ff: bool| {
        let mut s = Simulator::new(cfg.clone(), program.clone()).unwrap();
        s.set_fast_forward(ff);
        s.set_faults(Some(faults));
        s.set_watchdog(WatchdogConfig::default());
        match s.run(LIMIT) {
            Err(SimError::Livelock(r)) => format!("{r:?}"),
            other => panic!("expected livelock, got {other:?}"),
        }
    };
    for ff in [false, true] {
        let expected = run_whole(ff);
        let mut donor = Simulator::new(cfg.clone(), program.clone()).unwrap();
        donor.set_fast_forward(ff);
        donor.set_faults(Some(faults));
        donor.set_watchdog(WatchdogConfig::default());
        donor.run_to(200).unwrap();
        let bytes = donor.snapshot();
        let mut resumed = Simulator::restore(cfg.clone(), program.clone(), &bytes).unwrap();
        let got = match resumed.run(LIMIT) {
            Err(SimError::Livelock(r)) => format!("{r:?}"),
            other => panic!("expected livelock after restore, got {other:?}"),
        };
        assert_eq!(got, expected, "ff={ff}: livelock report must be identical");
    }
}

#[test]
fn snapshot_restore_with_attached_nic() {
    // The NIC attachment — window base, configuration, per-slot in-flight
    // assembly, and the delivered-message log — rides the snapshot frame:
    // restore reconstructs it without the caller re-attaching, and the
    // resumed machine's NI state is byte-identical to the uninterrupted
    // run's. Snapshot cycles are chosen to land mid-message on the lock
    // path (frames half-assembled from single beats).
    let cfg = SimConfig::default();
    let spec = workloads::MessagingSpec {
        count: 8,
        payload_dwords: 7,
        sender: 3,
        slots: 2,
    };
    let nic_cfg = csb_nic::NicConfig {
        slot_size: cfg.line(),
        slots: 2,
        ..csb_nic::NicConfig::default()
    };
    let cases = [
        (
            workloads::lock_messages(spec, RetryPolicy::NaiveSpin, &cfg).unwrap(),
            csb_core::UNCACHED_BASE,
            None,
        ),
        (
            workloads::csb_messages(
                spec,
                RetryPolicy::Backoff {
                    attempts: 12,
                    base: 32,
                    max: 1024,
                    seed: 5,
                },
                &cfg,
            )
            .unwrap(),
            csb_core::COMBINING_BASE,
            Some(
                FaultConfig::new(0x11c)
                    .flush_disturb_rate(0.4)
                    .bus_error_rate(0.1)
                    .device_nack_rate(0.1),
            ),
        ),
    ];
    for (program, base, faults) in cases {
        for &snap_at in &[1, 60, 400, 900] {
            for ff in [false, true] {
                let attach = |s: &mut Simulator| {
                    s.attach_nic(nic_cfg, csb_isa::Addr::new(base)).unwrap();
                    s.set_fast_forward(ff);
                    s.set_faults(faults);
                };
                let mut whole = Simulator::new(cfg.clone(), program.clone()).unwrap();
                attach(&mut whole);
                let expected = whole.run(LIMIT).expect("uninterrupted run completes");

                let mut donor = Simulator::new(cfg.clone(), program.clone()).unwrap();
                attach(&mut donor);
                donor.run_to(snap_at).unwrap();
                let bytes = donor.snapshot();
                let mut resumed = Simulator::restore(cfg.clone(), program.clone(), &bytes).unwrap();
                let got = resumed.run(LIMIT).expect("resumed run completes");

                let ctx = format!("base={base:#x} snap_at={snap_at} ff={ff}");
                assert_eq!(
                    serde_json::to_string(&got).unwrap(),
                    serde_json::to_string(&expected).unwrap(),
                    "{ctx}: summaries must match"
                );
                let nic = resumed.nic().expect("attachment restored from frame");
                let nic_whole = whole.nic().unwrap();
                assert_eq!(
                    nic.stats(),
                    nic_whole.stats(),
                    "{ctx}: NI counters must match"
                );
                assert_eq!(
                    serde_json::to_string(&nic.messages().to_vec()).unwrap(),
                    serde_json::to_string(&nic_whole.messages().to_vec()).unwrap(),
                    "{ctx}: delivered-message logs must be byte-identical"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random snapshot cycles on random workload shapes, both loops:
    /// including cycles that land mid-flush and mid-bus-transaction.
    #[test]
    fn snapshot_round_trips_at_random_cycles(
        snap_at in 1u64..2_500,
        transfer_idx in 0usize..3,
        csb_path in proptest::bool::ANY,
        ff in proptest::bool::ANY,
        shuffled in proptest::bool::ANY,
    ) {
        let cfg = SimConfig::default();
        let transfer = [64usize, 256, 512][transfer_idx];
        let path = if csb_path {
            workloads::StorePath::Csb
        } else {
            workloads::StorePath::Uncached
        };
        let order = if shuffled { StoreOrder::Shuffled } else { StoreOrder::Ascending };
        let program = workloads::store_bandwidth_ordered(transfer, &cfg, path, order).unwrap();
        assert_snapshot_differential(&cfg, &program, snap_at, ff, None);
    }

    /// Random snapshot cycles under a seeded fault schedule.
    #[test]
    fn snapshot_round_trips_under_faults(
        snap_at in 1u64..1_500,
        seed in 0u64..64,
        ff in proptest::bool::ANY,
    ) {
        let cfg = SimConfig::default();
        let program = workloads::csb_sequence_with_policy(
            8,
            RetryPolicy::Bounded { attempts: 8 },
            &cfg,
        ).unwrap();
        let faults = FaultConfig::new(seed)
            .flush_disturb_rate(0.4)
            .bus_error_rate(0.1)
            .device_nack_rate(0.1);
        let mut whole = Simulator::new(cfg.clone(), program.clone()).unwrap();
        whole.set_fast_forward(ff);
        whole.set_faults(Some(faults));
        let expected = match whole.run(LIMIT) {
            Ok(s) => serde_json::to_string(&s).unwrap(),
            Err(e) => format!("{e:?}"),
        };
        let mut donor = Simulator::new(cfg.clone(), program.clone()).unwrap();
        donor.set_fast_forward(ff);
        donor.set_faults(Some(faults));
        donor.run_to(snap_at).unwrap();
        let bytes = donor.snapshot();
        let mut resumed = Simulator::restore(cfg.clone(), program.clone(), &bytes).unwrap();
        let got = match resumed.run(LIMIT) {
            Ok(s) => serde_json::to_string(&s).unwrap(),
            Err(e) => format!("{e:?}"),
        };
        prop_assert_eq!(got, expected);
    }
}

// ---------------------------------------------------------------------------
// Point-cache contract. The cache is process-global, so these tests
// serialize on one lock and install/remove their own stores.
// ---------------------------------------------------------------------------

static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn with_cache<T>(name: &str, f: impl FnOnce(&cache::PointCache) -> T) -> T {
    let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("csb-snapshot-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(cache::PointCache::open(&dir).expect("cache dir"));
    cache::set_active(Some(store.clone()));
    let out = f(&store);
    cache::set_active(None);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn small_specs() -> Vec<PointSpec> {
    let cfg = SimConfig::default();
    [64usize, 128, 256]
        .iter()
        .map(|&transfer| PointSpec {
            label: format!("cache-test/{transfer}B"),
            cfg: cfg.clone(),
            work: PointWork::Bandwidth {
                transfer,
                scheme: Scheme::Csb,
                order: StoreOrder::Ascending,
            },
        })
        .collect()
}

#[test]
fn warm_sweep_is_all_hits_with_identical_values() {
    with_cache("warm", |store| {
        let specs = small_specs();
        let (cold_values, cold_report) = run_values(&specs, 1).unwrap();
        let cold = cold_report.cache.expect("cache stats recorded");
        assert_eq!(cold.misses, specs.len() as u64);
        assert_eq!(cold.hits, 0);
        assert!(cold.bytes_written > 0);

        let (warm_values, warm_report) = run_values(&specs, 2).unwrap();
        let warm = warm_report.cache.expect("cache stats recorded");
        assert_eq!(
            warm.hits,
            specs.len() as u64,
            "second sweep must be all hits"
        );
        assert_eq!(warm.misses, 0);
        assert_eq!(warm.invalidations, 0);
        assert_eq!(warm_values, cold_values, "cached values must be identical");
        assert_eq!(store.stats().hits, specs.len() as u64);

        // The report surfaces the pair as metrics counters too.
        assert!(warm_report.render().contains("cache"));
        let m = warm_report.metrics.expect("cache counters in metrics");
        assert_eq!(m.counters["cache.hit"], specs.len() as u64);
        assert_eq!(m.counters["cache.miss"], 0);
    });
}

#[test]
fn corrupted_entry_is_detected_and_resimulated() {
    with_cache("corrupt", |store| {
        let specs = small_specs();
        let (cold_values, _) = run_values(&specs, 1).unwrap();

        // Flip one byte in one entry.
        let entry = std::fs::read_dir(store.dir())
            .unwrap()
            .next()
            .expect("at least one entry")
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&entry, &bytes).unwrap();

        let (warm_values, report) = run_values(&specs, 1).unwrap();
        let stats = report.cache.expect("cache stats recorded");
        assert_eq!(stats.invalidations, 1, "corruption must be detected");
        assert_eq!(stats.misses, 1, "the corrupted point re-simulates");
        assert_eq!(stats.hits, specs.len() as u64 - 1);
        assert_eq!(warm_values, cold_values, "values must survive corruption");

        // The re-simulated entry was rewritten: a third sweep is all hits.
        let (_, report) = run_values(&specs, 1).unwrap();
        assert_eq!(report.cache.unwrap().hits, specs.len() as u64);
    });
}

#[test]
fn config_change_invalidates_only_that_point() {
    with_cache("invalidate", |_| {
        let mut specs = small_specs();
        let (_, cold_report) = run_values(&specs, 1).unwrap();
        assert_eq!(cold_report.cache.unwrap().misses, specs.len() as u64);

        // Change ONE point's machine configuration.
        specs[1].cfg = SimConfig::default().line_size(32);
        let (_, report) = run_values(&specs, 1).unwrap();
        let stats = report.cache.expect("cache stats recorded");
        assert_eq!(
            stats.hits,
            specs.len() as u64 - 1,
            "unchanged points must stay warm"
        );
        assert_eq!(stats.misses, 1, "exactly the edited point re-simulates");
    });
}

#[test]
fn observed_points_bypass_the_cache() {
    with_cache("observed", |store| {
        use csb_core::experiments::runner::{run_values_observed, ObsConfig};
        let specs = small_specs();
        let obs = ObsConfig {
            trace: false,
            metrics: true,
        };
        let (_, artifacts, report) = run_values_observed(&specs, 1, obs).unwrap();
        assert!(
            report.cache.is_none(),
            "artifact-capturing sweeps must not touch the cache"
        );
        assert_eq!(store.stats(), cache::CacheStats::default());
        assert!(artifacts.iter().all(|a| a.artifacts.metrics.is_some()));
    });
}
