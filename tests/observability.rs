//! End-to-end checks for the tracing + metrics layer: Chrome trace-event
//! export validity, artifact determinism across worker counts, the
//! metrics-match-stats invariants, and a golden trace snapshot.
//!
//! To regenerate the golden trace after an intentional model change:
//! `UPDATE_GOLDEN=1 cargo test -p csb-core --test observability`

use std::fs;
use std::path::PathBuf;

use csb_core::experiments::fig5::{self, LockResidency};
use csb_core::experiments::runner::{
    execute_point_observed, run_values_observed, ObsConfig, PointSpec, PointWork,
};
use csb_core::experiments::{throughput, Scheme};
use csb_core::{workloads, FaultConfig, SimConfig, Simulator};
use csb_isa::Program;
use csb_obs::Track;
use serde_json::Value;

const FULL_OBS: ObsConfig = ObsConfig {
    trace: true,
    metrics: true,
};

/// A tiny fig5-style point: the CSB path of the 4-doubleword lock
/// sequence on the paper's default machine.
fn csb_point() -> PointSpec {
    PointSpec {
        label: "5a/4dw/CSB".into(),
        cfg: SimConfig::default(),
        work: PointWork::Latency {
            dwords: 4,
            scheme: Scheme::Csb,
            residency: LockResidency::Hit,
        },
    }
}

/// Looks up a key in a JSON object value.
fn field<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    match value {
        Value::Object(map) => map.iter().find(|(k, _)| k.as_str() == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Pulls the event list out of a parsed Chrome trace document.
fn trace_events(doc: &Value) -> Vec<Value> {
    match field(doc, "traceEvents") {
        Some(Value::Array(events)) => events.clone(),
        _ => panic!("traceEvents array missing"),
    }
}

fn str_field(event: &Value, key: &str) -> Option<String> {
    match field(event, key) {
        Some(Value::String(s)) => Some(s.clone()),
        _ => None,
    }
}

fn num_field(event: &Value, key: &str) -> Option<f64> {
    match field(event, key) {
        Some(Value::Number(serde_json::Number::U(u))) => Some(*u as f64),
        Some(Value::Number(serde_json::Number::I(i))) => Some(*i as f64),
        Some(Value::Number(serde_json::Number::F(f))) => Some(*f),
        _ => None,
    }
}

#[test]
fn chrome_trace_is_schema_valid_with_distinct_tracks() {
    let outcome = execute_point_observed(&csb_point(), FULL_OBS).expect("point simulates");
    let trace = outcome.artifacts.trace_json.expect("trace captured");
    let doc = serde_json::parse_value(&trace).expect("trace is valid JSON");
    let events = trace_events(&doc);
    assert!(!events.is_empty());

    // One thread_name metadata record per track, all in pid 1.
    let mut track_names = Vec::new();
    for e in &events {
        if str_field(e, "ph").as_deref() == Some("M") {
            assert_eq!(str_field(e, "name").as_deref(), Some("thread_name"));
            assert_eq!(num_field(e, "pid"), Some(1.0));
            let args = field(e, "args").expect("metadata args");
            track_names.push(str_field(args, "name").expect("thread name"));
        }
    }
    for track in Track::ALL {
        assert!(
            track_names.iter().any(|n| n == track.name()),
            "missing track {:?}",
            track.name()
        );
    }

    // Every payload event is a span (X, with dur) or a thread-scoped
    // instant (i), carries a timestamp, and lands on a known track.
    let tids: Vec<f64> = Track::ALL.iter().map(|t| t.tid() as f64).collect();
    for e in &events {
        let ph = str_field(e, "ph").expect("phase");
        if ph == "M" {
            continue;
        }
        assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
        assert!(num_field(e, "ts").is_some(), "event without timestamp");
        let tid = num_field(e, "tid").expect("event without track");
        assert!(tids.contains(&tid), "unknown tid {tid}");
        if ph == "X" {
            assert!(num_field(e, "dur").unwrap_or(-1.0) >= 0.0);
        } else {
            assert_eq!(str_field(e, "s").as_deref(), Some("t"));
        }
    }
}

#[test]
fn metrics_artifact_matches_simulator_stats() {
    let outcome = execute_point_observed(&csb_point(), FULL_OBS).expect("point simulates");
    let report = outcome.artifacts.metrics.expect("metrics captured");
    // The acceptance invariant: one flush-retry-latency observation per
    // successful conditional flush.
    let flush = &report.metrics.histograms["csb_flush_retry_latency"];
    assert_eq!(flush.count, report.csb.flush_successes);
    assert!(report.csb.flush_successes > 0, "workload flushed");
    // Every burst the CSB drove is one burst-size observation.
    assert_eq!(
        report.metrics.histograms["csb_burst_bytes"].count,
        report.csb.bursts
    );
    // First-try + retried partitions the successes.
    let first = report
        .metrics
        .counters
        .get("csb_flush_first_try")
        .copied()
        .unwrap_or(0);
    let retried = report
        .metrics
        .counters
        .get("csb_flush_retried")
        .copied()
        .unwrap_or(0);
    assert_eq!(first + retried, report.csb.flush_successes);
    // And the report serializes as one self-contained JSON document.
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let doc = serde_json::parse_value(&json).expect("report is valid JSON");
    assert!(matches!(doc, Value::Object(_)));
}

#[test]
fn artifacts_stable_across_worker_counts() {
    // A fig5-style sweep (all schemes at 4 doublewords) twice: serial and
    // on 4 workers. Both the values and every per-point artifact must be
    // byte-identical — worker count must never leak into what we save.
    let cfg = SimConfig::default();
    let specs: Vec<PointSpec> = Scheme::ladder(cfg.line())
        .into_iter()
        .map(|scheme| PointSpec {
            label: format!("5a/4dw/{scheme}"),
            cfg: cfg.clone(),
            work: PointWork::Latency {
                dwords: 4,
                scheme,
                residency: LockResidency::Hit,
            },
        })
        .collect();
    let (v1, a1, _) = run_values_observed(&specs, 1, FULL_OBS).expect("serial sweep");
    let (v4, a4, _) = run_values_observed(&specs, 4, FULL_OBS).expect("parallel sweep");
    assert_eq!(v1, v4);
    assert_eq!(a1.len(), a4.len());
    for (x, y) in a1.iter().zip(&a4) {
        assert_eq!(x.label, y.label);
        assert_eq!(
            x.artifacts.trace_json, y.artifacts.trace_json,
            "trace for {} depends on worker count",
            x.label
        );
        let mx = serde_json::to_string(x.artifacts.metrics.as_ref().unwrap()).unwrap();
        let my = serde_json::to_string(y.artifacts.metrics.as_ref().unwrap()).unwrap();
        assert_eq!(mx, my, "metrics for {} depend on worker count", x.label);
    }
}

#[test]
fn disabled_observability_keeps_tables_identical() {
    // The zero-cost-when-disabled claim, end to end: a run with capture
    // off must produce the same panel bytes as one that never heard of
    // observability.
    let (plain, _) = fig5::run_jobs(2).expect("Figure 5 simulates");
    let (observed, artifacts, _) =
        fig5::run_jobs_observed(2, ObsConfig::default()).expect("Figure 5 simulates");
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&observed).unwrap()
    );
    assert!(artifacts.iter().all(|la| la.artifacts.is_empty()));
}

/// Runs `program` traced + metered through both loops and asserts the
/// exported Chrome trace and the metrics snapshot are byte-identical.
/// Returns (fast-forward simulator, cycles simulated, ticks it took).
fn assert_traced_identical(
    cfg: &SimConfig,
    program: &Program,
    faults: Option<FaultConfig>,
) -> (Simulator, u64, u64) {
    let mut ff = Simulator::new(cfg.clone(), program.clone()).expect("config valid");
    ff.set_fast_forward(true);
    let mut naive = Simulator::new(cfg.clone(), program.clone()).expect("config valid");
    naive.set_fast_forward(false);
    for sim in [&mut ff, &mut naive] {
        sim.enable_tracing();
        sim.enable_metrics();
        sim.set_faults(faults);
    }
    let a = ff.run(50_000_000).expect("ff run completes");
    let b = naive.run(50_000_000).expect("naive run completes");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "run summaries must match"
    );
    assert_eq!(
        ff.chrome_trace(),
        naive.chrome_trace(),
        "traces must be byte-identical"
    );
    assert_eq!(
        serde_json::to_string(&ff.metrics_snapshot()).unwrap(),
        serde_json::to_string(&naive.metrics_snapshot()).unwrap(),
        "metrics snapshots (timeline included) must be byte-identical"
    );
    let ticks = ff.ticks();
    (ff, a.cycles, ticks)
}

#[test]
fn fast_forward_trace_byte_identical_on_csb_active_point() {
    // The throughput bench's CSB-active shape (4along/16KB/CSB): the bus
    // is occupied nearly end to end, so almost every traced cycle inside
    // the run is bridged by the walk — the events must be synthesized,
    // not ticked.
    let spec = throughput::csb_active_point();
    assert_eq!(spec.label, "4along/16KB/CSB");
    let csb_core::experiments::runner::PointWork::Bandwidth { transfer, .. } = spec.work else {
        panic!("csb-active point is a bandwidth point");
    };
    let program =
        workloads::store_bandwidth(transfer, &spec.cfg, workloads::StorePath::CsbOutlined)
            .expect("workload builds");
    let (_, cycles, ticks) = assert_traced_identical(&spec.cfg, &program, None);
    assert!(
        ticks * 4 < cycles,
        "traced walk must still skip most cycles (ticked {ticks} of {cycles})"
    );
}

#[test]
fn fast_forward_trace_byte_identical_under_seeded_faults() {
    // Device NACK reissues, bus errors, and flush disturbs all emit (or
    // count) inside jumps; the synthesized stream must replay the
    // schedule event-for-event.
    let cfg = SimConfig::default().frequency_ratio(8);
    let faults = FaultConfig::new(0x5eed)
        .bus_error_rate(0.15)
        .device_nack_rate(0.30)
        .flush_disturb_rate(0.15)
        .max_consecutive(8);
    for path in [workloads::StorePath::Uncached, workloads::StorePath::Csb] {
        let program = workloads::store_bandwidth(1024, &cfg, path).expect("workload builds");
        let (ff, cycles, ticks) = assert_traced_identical(&cfg, &program, Some(faults));
        assert!(ticks < cycles, "faulted run must still fast-forward");
        let snap = ff.metrics_snapshot();
        let injected: u64 = [
            "fault_bus_errors",
            "fault_device_nacks",
            "fault_flush_disturbs",
        ]
        .iter()
        .map(|k| snap.counters.get(*k).copied().unwrap_or(0))
        .sum();
        assert!(injected > 0, "fault schedule must actually fire ({path:?})");
    }
}

#[test]
fn timeline_window_sums_match_run_totals() {
    // The timeline's defining invariant: at any window resolution, the
    // per-window stats sum exactly to the run totals — on both loops.
    let spec = throughput::csb_active_point();
    let csb_core::experiments::runner::PointWork::Bandwidth { transfer, .. } = spec.work else {
        panic!("csb-active point is a bandwidth point");
    };
    let program =
        workloads::store_bandwidth(transfer, &spec.cfg, workloads::StorePath::CsbOutlined)
            .expect("workload builds");
    for fast_forward in [true, false] {
        let mut sim = Simulator::new(spec.cfg.clone(), program.clone()).expect("config valid");
        sim.set_fast_forward(fast_forward);
        sim.enable_metrics();
        let summary = sim.run(50_000_000).expect("run completes");
        let timeline = sim.metrics_snapshot().timeline;
        assert!(
            timeline.windows.len() > 1,
            "a >10k-cycle run spans multiple windows"
        );
        let totals = timeline.totals();
        assert_eq!(totals.bus_txns, summary.bus.transactions);
        assert_eq!(totals.flush_successes, summary.csb.flush_successes);
        assert_eq!(totals.flush_failures, summary.csb.flush_failures);
        assert_eq!(totals.retired, summary.cpu.retired);
        assert_eq!(totals.faults, 0, "fault-free run");
        assert!(totals.bus_busy_cycles > 0 && totals.bus_payload_bytes > 0);
    }
}

#[test]
fn golden_trace_snapshot() {
    let outcome = execute_point_observed(&csb_point(), FULL_OBS).expect("point simulates");
    let trace = outcome.artifacts.trace_json.expect("trace captured");
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/trace_5a_4dw_csb.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        fs::write(&path, &trace).expect("golden trace writes");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden trace {} missing — run UPDATE_GOLDEN=1 cargo test -p csb-core --test observability",
            path.display()
        )
    });
    assert_eq!(
        trace.trim(),
        expected.trim(),
        "the traced event stream drifted; if the model change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
