//! Differential tests for the MultiSim scheduler traversals: the
//! O(log n) horizon heap must be **byte-identical** to the legacy O(n)
//! round-robin scan on every observable — summaries, device logs, CSB
//! statistics, fault counters, livelock reports (down to the firing
//! cycle), and snapshot frames — across switch policies, open-loop
//! arrival schedules, fault schedules, and mid-run snapshot/restore.
//! The heap is a traversal optimization, never a semantic change.

use csb_core::experiments::contend::arrival_schedule;
use csb_core::multiproc::{MultiSim, MultiSummary, SchedulerMode, SwitchPolicy};
use csb_core::workloads;
use csb_core::{FaultConfig, SimConfig, SimError};
use csb_isa::Program;

const LIMIT: u64 = 10_000_000;

fn workers(cfg: &SimConfig, n: usize, iters: usize) -> Vec<Program> {
    (0..n)
        .map(|i| workloads::csb_worker(iters, 8, i, cfg).unwrap())
        .collect()
}

/// Builds one MultiSim with the given traversal, arrivals, and faults.
fn build(
    cfg: &SimConfig,
    programs: &[Program],
    policy: SwitchPolicy,
    mode: SchedulerMode,
    arrivals: Option<&[u64]>,
    faults: Option<FaultConfig>,
) -> MultiSim {
    let mut ms = MultiSim::new(cfg.clone(), programs.to_vec(), policy).unwrap();
    if let Some(at) = arrivals {
        ms.set_arrivals(at);
    }
    ms.set_scheduler(mode);
    ms.set_faults(faults);
    ms
}

/// Runs the same configuration under both traversals and asserts every
/// observable is byte-identical. Returns the (shared) summary.
fn assert_modes_identical(
    cfg: &SimConfig,
    programs: &[Program],
    policy: SwitchPolicy,
    arrivals: Option<&[u64]>,
    faults: Option<FaultConfig>,
    label: &str,
) -> MultiSummary {
    let mut legacy = build(
        cfg,
        programs,
        policy,
        SchedulerMode::RoundRobin,
        arrivals,
        faults,
    );
    let mut heap = build(
        cfg,
        programs,
        policy,
        SchedulerMode::HorizonHeap,
        arrivals,
        faults,
    );
    let a = legacy
        .run(LIMIT)
        .unwrap_or_else(|e| panic!("{label}: legacy run failed: {e:?}"));
    let b = heap
        .run(LIMIT)
        .unwrap_or_else(|e| panic!("{label}: heap run failed: {e:?}"));
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "{label}: summaries must be byte-identical"
    );
    assert_eq!(
        serde_json::to_string(legacy.simulator().device()).unwrap(),
        serde_json::to_string(heap.simulator().device()).unwrap(),
        "{label}: device logs must be byte-identical"
    );
    assert_eq!(
        format!("{:?}", legacy.simulator().csb_stats()),
        format!("{:?}", heap.simulator().csb_stats()),
        "{label}: CSB statistics must be byte-identical"
    );
    assert_eq!(
        format!("{:?}", legacy.fault_stats()),
        format!("{:?}", heap.fault_stats()),
        "{label}: fault counters must be byte-identical"
    );
    a
}

#[test]
fn heap_equals_legacy_across_policies() {
    let cfg = SimConfig::default();
    let programs = workers(&cfg, 3, 4);
    for policy in [
        SwitchPolicy::Fixed(60),
        SwitchPolicy::Fixed(100_000),
        SwitchPolicy::Backoff { base: 6, max: 4096 },
    ] {
        let s = assert_modes_identical(&cfg, &programs, policy, None, None, &format!("{policy:?}"));
        assert_eq!(s.flush_successes, 12, "{policy:?}: all accesses complete");
    }
}

#[test]
fn heap_equals_legacy_with_arrivals() {
    let cfg = SimConfig::default();
    for &n in &[2usize, 8, 16] {
        let programs = workers(&cfg, n, 2);
        for seed in 0..3u64 {
            let arrivals = arrival_schedule(n, 80_000, seed);
            let s = assert_modes_identical(
                &cfg,
                &programs,
                SwitchPolicy::Fixed(120),
                Some(&arrivals),
                None,
                &format!("n={n} seed={seed}"),
            );
            assert_eq!(s.flush_successes, 2 * n as u64);
            assert!(
                s.completions.iter().all(|&c| c > 0),
                "n={n} seed={seed}: every arrival must finish"
            );
        }
    }
}

#[test]
fn heap_equals_legacy_under_faults() {
    let cfg = SimConfig::default();
    let programs = workers(&cfg, 3, 3);
    for seed in [5u64, 9] {
        let faults = FaultConfig::new(seed)
            .flush_disturb_rate(0.3)
            .bus_error_rate(0.05)
            .device_nack_rate(0.05);
        let s = assert_modes_identical(
            &cfg,
            &programs,
            SwitchPolicy::Backoff {
                base: 60,
                max: 4096,
            },
            None,
            Some(faults),
            &format!("faults seed={seed}"),
        );
        assert_eq!(s.flush_successes, 9, "disturbed flushes retry to success");
    }
}

#[test]
fn livelock_reports_fire_at_the_identical_cycle() {
    // Fixed 6-cycle slices: no flush can ever complete, the watchdog must
    // fire — and must fire at the *same cycle* with the same report under
    // both traversals (the watchdog reads the same advance pattern).
    let cfg = SimConfig::default();
    let programs = workers(&cfg, 2, 1);
    let mut reports = Vec::new();
    for mode in [SchedulerMode::RoundRobin, SchedulerMode::HorizonHeap] {
        let mut ms = build(&cfg, &programs, SwitchPolicy::Fixed(6), mode, None, None);
        match ms.run(300_000) {
            Err(SimError::Livelock(r)) => reports.push(r),
            other => panic!("{mode:?}: expected livelock, got {other:?}"),
        }
    }
    assert_eq!(reports[0].cycle, reports[1].cycle, "firing cycle differs");
    assert_eq!(
        format!("{:?}", reports[0]),
        format!("{:?}", reports[1]),
        "whole livelock reports must be identical"
    );
    assert_eq!(reports[0].consecutive_flush_failures, 64);
}

#[test]
fn snapshot_frames_are_identical_between_modes_and_restore_across() {
    // SchedulerMode is deliberately not serialized: both traversals
    // compute the same schedule, so the snapshot frames must be equal
    // byte-for-byte at the same cycle, and a frame taken under one mode
    // must finish identically when restored under the other.
    let cfg = SimConfig::default();
    let programs = workers(&cfg, 2, 4);
    let policy = SwitchPolicy::Fixed(60);

    let mut whole = build(
        &cfg,
        &programs,
        policy,
        SchedulerMode::HorizonHeap,
        None,
        None,
    );
    let expected = whole.run(LIMIT).unwrap();

    let mut legacy = build(
        &cfg,
        &programs,
        policy,
        SchedulerMode::RoundRobin,
        None,
        None,
    );
    let mut heap = build(
        &cfg,
        &programs,
        policy,
        SchedulerMode::HorizonHeap,
        None,
        None,
    );
    for ms in [&mut legacy, &mut heap] {
        match ms.run(150) {
            Err(SimError::CycleLimit { .. }) => {}
            other => panic!("expected mid-run CycleLimit, got {other:?}"),
        }
    }
    let frame_legacy = legacy.snapshot();
    let frame_heap = heap.snapshot();
    assert_eq!(
        frame_legacy, frame_heap,
        "snapshot frames must be byte-identical between traversals"
    );

    // Cross-restore: heap frame, legacy continuation (and vice versa).
    for (frame, mode) in [
        (&frame_heap, SchedulerMode::RoundRobin),
        (&frame_legacy, SchedulerMode::HorizonHeap),
    ] {
        let mut resumed = MultiSim::restore(cfg.clone(), programs.clone(), policy, frame).unwrap();
        resumed.set_scheduler(mode);
        let got = resumed.run(LIMIT).unwrap();
        assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(&expected).unwrap(),
            "{mode:?}: cross-mode resume must finish byte-identically"
        );
    }
}

#[test]
fn mid_gap_snapshot_restore_with_arrivals() {
    // Snapshot while the machine is parked inside an idle arrival gap —
    // the heap's jumped-over region — and resume under both traversals.
    let cfg = SimConfig::default();
    let n = 8;
    let programs = workers(&cfg, n, 1);
    let arrivals = arrival_schedule(n, 60_000, 42);
    let policy = SwitchPolicy::Fixed(200);

    let mut whole = build(
        &cfg,
        &programs,
        policy,
        SchedulerMode::HorizonHeap,
        Some(&arrivals),
        None,
    );
    let expected = whole.run(LIMIT).unwrap();

    for snap_at in [500u64, 7_000, 30_000] {
        let mut donor = build(
            &cfg,
            &programs,
            policy,
            SchedulerMode::HorizonHeap,
            Some(&arrivals),
            None,
        );
        match donor.run(snap_at) {
            Err(SimError::CycleLimit { .. }) => {}
            other => panic!("snap_at={snap_at}: expected CycleLimit, got {other:?}"),
        }
        let frame = donor.snapshot();
        for mode in [SchedulerMode::RoundRobin, SchedulerMode::HorizonHeap] {
            let mut resumed =
                MultiSim::restore(cfg.clone(), programs.clone(), policy, &frame).unwrap();
            resumed.set_scheduler(mode);
            let got = resumed.run(LIMIT).unwrap();
            assert_eq!(
                serde_json::to_string(&got).unwrap(),
                serde_json::to_string(&expected).unwrap(),
                "snap_at={snap_at} {mode:?}: resume must be byte-identical"
            );
            assert_eq!(
                serde_json::to_string(resumed.simulator().device()).unwrap(),
                serde_json::to_string(whole.simulator().device()).unwrap(),
                "snap_at={snap_at} {mode:?}: device log must be byte-identical"
            );
        }
    }
}

#[test]
fn seeded_property_sweep_over_core_counts() {
    // The satellite property loop: arbitrary core counts (2–64) × arrival
    // seeds, both traversals, every observable identical and the run
    // complete. Doubles as the livelock-free guarantee for the contention
    // sweep's configuration space.
    let cfg = SimConfig::default();
    for &n in &[2usize, 5, 13, 33, 64] {
        let programs = workers(&cfg, n, 1);
        for seed in [11u64, 1_000_007] {
            let arrivals = arrival_schedule(n, 40_000, seed);
            let s = assert_modes_identical(
                &cfg,
                &programs,
                SwitchPolicy::Fixed(90),
                Some(&arrivals),
                None,
                &format!("prop n={n} seed={seed}"),
            );
            assert_eq!(s.flush_successes, n as u64);
            assert!(s.completions.iter().all(|&c| c > 0));
        }
    }
}
