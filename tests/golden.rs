//! Golden-file snapshot tests: the figure harnesses must keep producing
//! bit-identical results (the simulator is fully deterministic).
//!
//! To regenerate after an intentional model change:
//! `UPDATE_GOLDEN=1 cargo test -p csb-core --test golden` — then review the
//! diff against EXPERIMENTS.md.

use std::fs;
use std::path::PathBuf;

use csb_core::experiments::{bandwidth_panel, fig5};
use csb_core::SimConfig;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn check_or_update<T: serde::Serialize>(name: &str, value: &T) {
    let path = golden_path(name);
    let actual = serde_json::to_string_pretty(value).expect("serializes");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        fs::write(&path, &actual).expect("golden file writes");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden file {} missing — run UPDATE_GOLDEN=1 cargo test -p csb-core --test golden",
            path.display()
        )
    });
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "{name} drifted from its golden snapshot; if the model change is \
         intentional, regenerate with UPDATE_GOLDEN=1 and update EXPERIMENTS.md"
    );
}

#[test]
fn fig5_panels_match_golden() {
    let panels = fig5::run().expect("Figure 5 simulates");
    check_or_update("fig5.json", &panels);
}

#[test]
fn fig3e_panel_matches_golden() {
    // The central Figure 3 panel: ratio 6, 64-byte line, idle bus.
    let cfg = SimConfig::default();
    let panel = bandwidth_panel("3e", "ratio 6, 64B line", &cfg).expect("panel simulates");
    check_or_update("fig3e.json", &panel);
}

#[test]
fn fig4a_panel_matches_golden() {
    let cfg = SimConfig::default().bus(
        csb_bus::BusConfig::split(16)
            .max_burst(64)
            .build()
            .expect("valid bus"),
    );
    let panel = bandwidth_panel("4a", "16B split bus", &cfg).expect("panel simulates");
    check_or_update("fig4a.json", &panel);
}
