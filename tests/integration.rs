//! Cross-crate integration tests: whole programs through the full machine
//! (core + caches + uncached buffer + CSB + bus + device).

use csb_core::{multiproc, workloads, SimConfig, Simulator, COMBINING_BASE, UNCACHED_BASE};
use csb_isa::{Addr, Assembler, MemWidth, Program, Reg};

fn assemble(f: impl FnOnce(&mut Assembler)) -> Program {
    let mut a = Assembler::new();
    f(&mut a);
    a.assemble().expect("test program assembles")
}

#[test]
fn csb_line_delivered_atomically_with_exact_data() {
    let program = assemble(|a| {
        let retry = a.new_label();
        a.movi(Reg::O1, COMBINING_BASE as i64);
        a.bind(retry).unwrap();
        a.movi(Reg::L4, 8);
        for i in 0..8 {
            a.movi(Reg::L0, 0xa0 + i);
            a.std(Reg::L0, Reg::O1, 8 * i);
        }
        a.swap(Reg::L4, Reg::O1, 0);
        a.cmpi(Reg::L4, 8);
        a.bnz(retry);
        a.halt();
    });
    let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
    sim.run(1_000_000).unwrap();

    let device = sim.device();
    assert_eq!(device.len(), 1, "exactly one burst must arrive");
    let w = &device.writes()[0];
    assert_eq!(w.addr, Addr::new(COMBINING_BASE));
    assert_eq!(w.data.len(), 64);
    for i in 0..8u64 {
        let dw = u64::from_le_bytes(
            w.data[8 * i as usize..8 * i as usize + 8]
                .try_into()
                .unwrap(),
        );
        assert_eq!(dw, 0xa0 + i);
    }
}

#[test]
fn non_combining_stores_arrive_in_order_one_txn_each() {
    let program = assemble(|a| {
        a.movi(Reg::O1, UNCACHED_BASE as i64);
        for i in 0..10 {
            a.movi(Reg::L0, 0x100 + i);
            a.std(Reg::L0, Reg::O1, 8 * i);
        }
        a.halt();
    });
    let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
    let s = sim.run(1_000_000).unwrap();
    assert_eq!(s.bus.transactions, 10);
    let device = sim.device();
    assert_eq!(device.len(), 10);
    for (i, w) in device.writes().iter().enumerate() {
        assert_eq!(w.addr, Addr::new(UNCACHED_BASE + 8 * i as u64));
        assert_eq!(w.data.len(), 8);
        let dw = u64::from_le_bytes(w.data[..8].try_into().unwrap());
        assert_eq!(dw, 0x100 + i as u64);
    }
}

#[test]
fn combining_buffer_reduces_transactions_but_preserves_bytes() {
    let build = || {
        assemble(|a| {
            a.movi(Reg::O1, UNCACHED_BASE as i64);
            a.movi(Reg::L0, 0x42);
            for i in 0..32 {
                a.std(Reg::L0, Reg::O1, 8 * i);
            }
            a.halt();
        })
    };
    let mut none = Simulator::new(SimConfig::default().combining_block(8), build()).unwrap();
    let mut full = Simulator::new(SimConfig::default().combining_block(64), build()).unwrap();
    let sn = none.run(1_000_000).unwrap();
    let sf = full.run(1_000_000).unwrap();
    assert_eq!(sn.bus.payload_bytes, 256);
    assert_eq!(sf.bus.payload_bytes, 256);
    assert!(
        sf.bus.transactions < sn.bus.transactions,
        "combining must merge transactions: {} vs {}",
        sf.bus.transactions,
        sn.bus.transactions
    );
    // Same final device image either way.
    assert_eq!(
        none.device().bytes_at(Addr::new(UNCACHED_BASE), 256),
        full.device().bytes_at(Addr::new(UNCACHED_BASE), 256)
    );
}

#[test]
fn computed_values_flow_from_cached_memory_to_device() {
    // Compute in registers/cached memory, then transmit via the CSB:
    // the device must see the derived values.
    let program = assemble(|a| {
        let retry = a.new_label();
        a.movi(Reg::O0, 0x4000); // cached scratch
        a.movi(Reg::O1, COMBINING_BASE as i64);
        a.movi(Reg::L0, 21);
        a.alui(csb_isa::AluOp::Add, Reg::L0, Reg::L0, 21); // 42
        a.st(Reg::L0, Reg::O0, 0, MemWidth::B8); // to cached memory
        a.ld(Reg::L2, Reg::O0, 0, MemWidth::B8); // back from cache
        a.alui(csb_isa::AluOp::Sll, Reg::L3, Reg::L2, 1); // 84
        a.bind(retry).unwrap();
        a.movi(Reg::L4, 2);
        a.std(Reg::L2, Reg::O1, 0);
        a.std(Reg::L3, Reg::O1, 8);
        a.swap(Reg::L4, Reg::O1, 0);
        a.cmpi(Reg::L4, 2);
        a.bnz(retry);
        a.halt();
    });
    let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
    sim.run(1_000_000).unwrap();
    let w = &sim.device().writes()[0];
    assert_eq!(u64::from_le_bytes(w.data[0..8].try_into().unwrap()), 42);
    assert_eq!(u64::from_le_bytes(w.data[8..16].try_into().unwrap()), 84);
    assert_eq!(w.payload, 16);
    assert!(w.data[16..].iter().all(|&b| b == 0), "padding must be zero");
}

#[test]
fn multi_line_csb_message_arrives_in_line_order() {
    let cfg = SimConfig::default();
    let program = workloads::store_bandwidth(256, &cfg, workloads::StorePath::Csb).unwrap();
    let mut sim = Simulator::new(cfg, program).unwrap();
    let s = sim.run(1_000_000).unwrap();
    assert_eq!(s.bus.transactions, 4);
    let device = sim.device();
    assert_eq!(device.len(), 4);
    for (i, w) in device.writes().iter().enumerate() {
        assert_eq!(w.addr, Addr::new(COMBINING_BASE + 64 * i as u64));
        assert_eq!(w.payload, 64);
    }
    assert_eq!(s.csb.flush_successes, 4);
    assert_eq!(s.csb.flush_failures, 0);
}

#[test]
fn conflicting_processes_never_interleave_within_a_burst() {
    // Two processes hammer the SAME combining line with distinct fill
    // patterns under aggressive time slicing. The CSB guarantee: every
    // delivered burst contains stores of exactly one process (atomicity),
    // and each completed sequence is delivered exactly once.
    let worker = |pattern: u64| {
        assemble(|a| {
            a.movi(Reg::O1, COMBINING_BASE as i64);
            a.movi(Reg::L1, pattern as i64);
            a.movi(Reg::L5, 4); // iterations
            let outer = a.new_label();
            a.bind(outer).unwrap();
            let retry = a.new_label();
            a.bind(retry).unwrap();
            a.movi(Reg::L4, 8);
            for i in 0..8 {
                a.std(Reg::L1, Reg::O1, 8 * i);
            }
            a.swap(Reg::L4, Reg::O1, 0);
            a.cmpi(Reg::L4, 8);
            a.bnz(retry);
            a.alui(csb_isa::AluOp::Sub, Reg::L5, Reg::L5, 1);
            a.cmpi(Reg::L5, 0);
            a.bnz(outer);
            a.halt();
        })
    };
    let cfg = SimConfig::default();
    let programs = vec![worker(0x1111_1111_1111_1111), worker(0x2222_2222_2222_2222)];
    let mut ms =
        multiproc::MultiSim::new(cfg, programs, multiproc::SwitchPolicy::Fixed(45)).unwrap();
    let summary = ms.run(50_000_000).unwrap();

    assert_eq!(summary.flush_successes, 8, "4 sequences per process");
    assert!(summary.flush_failures > 0, "slicing must induce conflicts");

    let device = ms.simulator().device();
    assert_eq!(device.len(), 8, "exactly one burst per successful flush");
    for w in device.writes() {
        let first: [u8; 8] = w.data[0..8].try_into().unwrap();
        assert!(
            w.data.chunks(8).all(|c| c == first),
            "burst mixes data from two processes: {:x?}",
            w.data
        );
        assert!(
            first == 0x1111_1111_1111_1111u64.to_le_bytes()
                || first == 0x2222_2222_2222_2222u64.to_le_bytes()
        );
    }
}

#[test]
fn uncached_loads_round_trip_against_device_window() {
    let program = assemble(|a| {
        a.movi(Reg::O1, UNCACHED_BASE as i64);
        a.movi(Reg::L0, 0x77);
        a.std(Reg::L0, Reg::O1, 0); // store status
        a.ld(Reg::L2, Reg::O1, 0, MemWidth::B8); // read it back uncached
        a.alui(csb_isa::AluOp::Add, Reg::L3, Reg::L2, 1);
        a.halt();
    });
    let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
    let s = sim.run(1_000_000).unwrap();
    assert_eq!(sim.cpu().context().int_reg(Reg::L3), 0x78);
    assert_eq!(s.bus.transactions, 2); // one write, one read
    assert_eq!(s.cpu.uncached_ops, 2);
}

#[test]
fn lock_sequence_end_to_end_releases_lock() {
    let program = workloads::lock_sequence(4).unwrap();
    let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
    sim.warm_line(Addr::new(csb_core::LOCK_ADDR));
    let s = sim.run(1_000_000).unwrap();
    // Four uncached dword stores crossed the bus.
    assert_eq!(s.bus.payload_bytes, 32);
    // Lock is free again.
    assert_eq!(sim.memory_mut().read(Addr::new(csb_core::LOCK_ADDR), 8), 0);
    // And the membar actually waited.
    assert!(s.cpu.membar_stall_cycles > 0);
}

#[test]
fn different_ratios_scale_wall_clock_but_not_bus_window() {
    // The same non-combining workload at ratios 3 and 9: bytes/bus-cycle is
    // ratio-independent (4 B/c), while CPU cycles scale with the ratio.
    let cfg3 = SimConfig::default().frequency_ratio(3);
    let cfg9 = SimConfig::default().frequency_ratio(9);
    let p3 = workloads::store_bandwidth(512, &cfg3, workloads::StorePath::Uncached).unwrap();
    let p9 = workloads::store_bandwidth(512, &cfg9, workloads::StorePath::Uncached).unwrap();
    let s3 = Simulator::new(cfg3, p3).unwrap().run(10_000_000).unwrap();
    let s9 = Simulator::new(cfg9, p9).unwrap().run(10_000_000).unwrap();
    assert!((s3.bus.effective_bandwidth() - 4.0).abs() < 0.1);
    assert!((s9.bus.effective_bandwidth() - 4.0).abs() < 0.1);
    assert!(
        s9.cycles > s3.cycles * 2,
        "ratio 9 must cost ~3x the CPU cycles"
    );
}

#[test]
fn double_buffered_csb_overlaps_flush_with_next_sequence() {
    let cfg_single = SimConfig::default();
    let cfg_double = SimConfig::default().csb_double_buffered();
    let p1 = workloads::store_bandwidth(1024, &cfg_single, workloads::StorePath::Csb).unwrap();
    let p2 = workloads::store_bandwidth(1024, &cfg_double, workloads::StorePath::Csb).unwrap();
    let s1 = Simulator::new(cfg_single, p1)
        .unwrap()
        .run(10_000_000)
        .unwrap();
    let s2 = Simulator::new(cfg_double, p2)
        .unwrap()
        .run(10_000_000)
        .unwrap();
    assert_eq!(s1.bus.transactions, 16);
    assert_eq!(s2.bus.transactions, 16);
    assert!(
        s2.cycles <= s1.cycles,
        "double buffering must not be slower: {} vs {}",
        s2.cycles,
        s1.cycles
    );
}

#[test]
fn variable_burst_csb_sends_exact_bytes() {
    let cfg = SimConfig::default().csb_variable_burst();
    // 24 bytes: variable burst sends 16B + 8B instead of one padded line.
    let program = workloads::store_bandwidth(24, &cfg, workloads::StorePath::Csb).unwrap();
    let mut sim = Simulator::new(cfg, program).unwrap();
    let s = sim.run(1_000_000).unwrap();
    assert_eq!(s.bus.transactions, 2);
    assert_eq!(s.bus.bytes_on_bus, 24);
    assert_eq!(s.bus.payload_bytes, 24);
    let sizes: Vec<usize> = sim.device().writes().iter().map(|w| w.data.len()).collect();
    assert_eq!(sizes, vec![16, 8]);
}

#[test]
fn simulation_is_deterministic() {
    // Identical configuration and program produce bit-identical summaries —
    // the property that makes every figure in EXPERIMENTS.md reproducible.
    let run = || {
        let cfg = SimConfig::default();
        let program = workloads::store_bandwidth(512, &cfg, workloads::StorePath::Csb).unwrap();
        let mut sim = Simulator::new(cfg, program).unwrap();
        let s = sim.run(10_000_000).unwrap();
        (s, sim.device().writes().to_vec())
    };
    let (s1, d1) = run();
    let (s2, d2) = run();
    assert_eq!(s1, s2);
    assert_eq!(d1, d2);
}

#[test]
fn fallback_workload_prefers_csb_when_unconflicted() {
    // Without competitors the retry budget is never touched: the access
    // commits through the CSB and the lock path is dead code.
    let cfg = SimConfig::default();
    let program = workloads::csb_sequence_with_fallback(8, 3, &cfg).unwrap();
    let mut sim = Simulator::new(cfg, program).unwrap();
    let s = sim.run(1_000_000).unwrap();
    assert_eq!(s.csb.flush_successes, 1);
    assert_eq!(s.csb.flush_failures, 0);
    assert_eq!(s.bus.transactions, 1, "one line burst, no lock traffic");
    assert_eq!(
        sim.memory_mut()
            .read(csb_isa::Addr::new(csb_core::LOCK_ADDR), 8),
        0
    );
}

/// The headline end-to-end claim: without synchronization, two processes'
/// programmed-I/O stores tear each other's frames at the NI; through the
/// CSB every frame arrives intact, with no lock anywhere.
#[test]
fn nic_frames_torn_without_csb_but_never_with_it() {
    use csb_nic::{encode_header, Nic, NicConfig};

    // Both processes send 4 messages of 3 payload dwords to NI slot 0.
    // `to_csb` picks the store path; the kernels are otherwise identical.
    let sender = |pid: u16, to_csb: bool| {
        assemble(|a| {
            let window = if to_csb {
                COMBINING_BASE
            } else {
                UNCACHED_BASE
            };
            a.movi(Reg::O1, window as i64);
            a.movi(Reg::L1, 0x1000 + pid as i64); // recognizable payload
            a.movi(Reg::L5, 4); // messages
            let outer = a.new_label();
            a.bind(outer).unwrap();
            let retry = a.new_label();
            a.bind(retry).unwrap();
            a.movi(Reg::L2, encode_header(24, 0, pid) as i64);
            a.movi(Reg::L4, 4); // header + 3 payload dwords
            a.std(Reg::L2, Reg::O1, 0);
            for i in 0..3 {
                a.std(Reg::L1, Reg::O1, 8 * (i + 1));
            }
            if to_csb {
                a.swap(Reg::L4, Reg::O1, 0);
                a.cmpi(Reg::L4, 4);
                a.bnz(retry);
            }
            a.alui(csb_isa::AluOp::Sub, Reg::L5, Reg::L5, 1);
            a.cmpi(Reg::L5, 0);
            a.bnz(outer);
            a.halt();
        })
    };

    let run = |to_csb: bool| {
        let cfg = SimConfig::default();
        let programs = vec![sender(1, to_csb), sender(2, to_csb)];
        let mut ms =
            multiproc::MultiSim::new(cfg, programs, multiproc::SwitchPolicy::Fixed(40)).unwrap();
        ms.run(50_000_000).unwrap();
        let mut nic = Nic::new(NicConfig::default()).unwrap();
        let base = if to_csb {
            COMBINING_BASE
        } else {
            UNCACHED_BASE
        };
        ms.simulator().device().feed_nic(&mut nic, Addr::new(base));
        nic
    };

    // Unsynchronized plain-uncached senders: slicing interleaves their
    // single-beat stores in the shared slot, producing corrupt frames —
    // either torn (header over incomplete message) or payload mixed from
    // both senders.
    let nic = run(false);
    let intact = nic
        .messages()
        .iter()
        .filter(|m| {
            let expect = (0x1000u64 + m.sender as u64).to_le_bytes();
            m.payload.chunks(8).all(|c| c == expect)
        })
        .count();
    let corrupted = nic.stats().torn_frames as usize + (nic.messages().len() - intact);
    assert!(
        corrupted > 0,
        "interleaved PIO must corrupt frames (torn {}, mixed {})",
        nic.stats().torn_frames,
        nic.messages().len() - intact
    );

    // CSB senders: every frame is one atomic line burst.
    let nic = run(true);
    assert_eq!(nic.stats().torn_frames, 0);
    assert_eq!(nic.messages().len(), 8);
    for m in nic.messages() {
        let expect = (0x1000u64 + m.sender as u64).to_le_bytes();
        assert!(
            m.payload.chunks(8).all(|c| c == expect),
            "CSB frame must be intact"
        );
        assert_eq!(m.payload.len(), 24);
    }
}

#[test]
fn random_mixed_workloads_complete_cleanly() {
    // Fuzz-style stress: random but valid instruction mixes must always
    // complete, drain, and commit every CSB sequence on the first try
    // (single process = no conflicts), across machine variants.
    for seed in 0..6u64 {
        let cfg = match seed % 3 {
            0 => SimConfig::default(),
            1 => SimConfig::default().frequency_ratio(3).combining_block(64),
            _ => SimConfig::default().line_size(32),
        };
        let program = workloads::random_mixed(seed, workloads::RandomMix::default(), &cfg).unwrap();
        let mut sim = Simulator::new(cfg, program).unwrap();
        let s = sim
            .run(20_000_000)
            .unwrap_or_else(|e| panic!("seed {seed} failed: {e}"));
        assert_eq!(
            s.csb.flush_failures, 0,
            "seed {seed}: unconflicted flushes must succeed"
        );
        assert!(s.bus.transactions > 0, "seed {seed}: traffic expected");
        assert!(sim.complete());
    }
}

#[test]
fn random_workload_is_deterministic_per_seed() {
    let cfg = SimConfig::default();
    let p1 = workloads::random_mixed(42, workloads::RandomMix::default(), &cfg).unwrap();
    let p2 = workloads::random_mixed(42, workloads::RandomMix::default(), &cfg).unwrap();
    assert_eq!(p1, p2);
    let p3 = workloads::random_mixed(43, workloads::RandomMix::default(), &cfg).unwrap();
    assert_ne!(p1, p3);
}

#[test]
fn papers_literal_assembly_runs_end_to_end() {
    // The exact kernel from the paper's §3.2 listing (with setup and halt),
    // assembled from text and run through the whole machine.
    let source = format!(
        r"
            set {COMBINING_BASE}, %o1
            fset 0x4045000000000000, %f0   ! 42.0
            fset 0x4049000000000000, %f10  ! 50.0
            fset 0x404c800000000000, %f12  ! 57.0
        .RETRY:
            set 8, %l4          ! expected value
            std %f0, [%o1]
            std %f10, [%o1+40]
            std %f0, [%o1+16]
            std %f10, [%o1+24]
            std %f12, [%o1+32]
            std %f0, [%o1+48]
            std %f10, [%o1+56]
            std %f12, [%o1+8]
            swap [%o1], %l4     ! conditional flush
            cmp %l4, 8          ! compare values
            bnz .RETRY          ! retry on failure
            halt
        "
    );
    let program = csb_isa::parse_asm(&source).unwrap();
    let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
    let s = sim.run(1_000_000).unwrap();
    assert_eq!(s.csb.flush_successes, 1);
    assert_eq!(s.bus.transactions, 1);
    let w = &sim.device().writes()[0];
    assert_eq!(w.payload, 64);
    let dw = |i: usize| {
        f64::from_bits(u64::from_le_bytes(
            w.data[8 * i..8 * i + 8].try_into().unwrap(),
        ))
    };
    assert_eq!(dw(0), 42.0);
    assert_eq!(dw(5), 50.0);
    assert_eq!(dw(1), 57.0);
}
