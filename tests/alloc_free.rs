//! Steady-state allocation audit: once a simulation is past its warmup
//! window, the cycle kernel must not touch the heap at all.
//!
//! A counting global allocator wraps the system allocator; the test runs
//! one Figure 3 bandwidth point (CSB store stream) and one Figure 5
//! latency point (lock sequence through the uncached buffer), ticks each
//! through its warmup — first-touch functional-memory chunks, the
//! MARK_START retirement, device-log growth into its reserved capacity —
//! and then asserts that a long mid-run window of ticks performs zero
//! allocations. Counting is thread-local so that the libtest harness
//! thread (which may print or poll concurrently) cannot pollute a
//! measurement window, and both points live in ONE `#[test]` so no
//! sibling test thread shares the audited thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use csb_core::{workloads, SimConfig, Simulator};
use csb_isa::Program;

struct CountingAllocator;

// Const-initialized thread-locals: first access from the allocator hooks
// must not itself allocate (a lazily-initialized thread-local could).
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    if COUNTING.with(Cell::get) {
        ALLOCS.with(|a| a.set(a.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Audits one point the way the sweep engine runs it in steady state: a
/// first cold execution pays every one-time cost (functional-memory
/// chunk first-touch, reserved capacities), then the simulator is
/// warm-reset onto the same point. The re-run ticks through the first
/// 30% (warmup: MARK_START retirement, allocator-free by then) and must
/// perform zero allocations over the next 40% (safely clear of both
/// MARK retirements and run completion).
fn audit(label: &str, cfg: &SimConfig, program: &Program, prep: impl Fn(&mut Simulator)) {
    let mut sim = Simulator::new(cfg.clone(), program.clone()).expect("point builds");
    prep(&mut sim);
    let total = sim.run(50_000_000).expect("point completes").cycles;
    let warmup = total * 3 / 10;
    let window = total * 4 / 10;
    assert!(
        window > 100,
        "{label}: run too short to audit ({total} cycles)"
    );

    sim.reset_with(cfg.clone(), program.clone())
        .expect("warm reset");
    prep(&mut sim);
    for _ in 0..warmup {
        sim.tick();
    }
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    for _ in 0..window {
        sim.tick();
    }
    COUNTING.with(|c| c.set(false));
    assert!(
        !sim.complete(),
        "{label}: completed inside the measured window"
    );
    let n = ALLOCS.with(Cell::get);
    assert_eq!(n, 0, "{label}: {n} heap allocation(s) in steady state");
}

#[test]
fn steady_state_ticks_do_not_allocate() {
    // Figure 3 shape: 8B multiplexed bus, 64B line, 1 KB CSB store
    // stream. Exercises the CSB line buffers, burst decomposition, the
    // bus, and delivery into functional memory + device log.
    let cfg = SimConfig::default();
    let program =
        workloads::store_bandwidth(1024, &cfg, workloads::StorePath::Csb).expect("fig3 workload");
    audit("fig3 1KB/CSB", &cfg, &program, |_| {});

    // Figure 5 shape: the lock/store/unlock sequence under 8-byte
    // (uncombined) staging, lock line missing to memory. Exercises the
    // uncached buffer's drain scratch, the swap path, and the caches.
    let cfg = SimConfig::default().combining_block(8);
    let program = workloads::lock_sequence(16).expect("fig5 workload");
    audit("fig5 16dw/none/miss", &cfg, &program, |sim| {
        sim.evict_line(csb_isa::Addr::new(csb_core::LOCK_ADDR));
    });
}
