//! Differential tests for the event-driven fast-forward path.
//!
//! Fast-forward must be invisible: every observable — `RunSummary` (byte-
//! identical JSON), `CsbStats`, metrics snapshots, golden traces — must
//! match the naive cycle-by-cycle loop exactly, on the figure workloads
//! and on randomized programs/configurations. The only permitted
//! difference is wall clock: a fully idle gap must cost O(1) real ticks.

use csb_bus::BusConfig;
use csb_core::experiments::fig5::{self, LockResidency};
use csb_core::experiments::{bandwidth_point, Scheme};
use csb_core::multiproc::{MultiSim, SwitchPolicy};
use csb_core::{workloads, FaultConfig, SimConfig, SimError, Simulator, WatchdogConfig};
use csb_isa::Program;
use csb_uncached::UncachedConfig;
use proptest::prelude::*;

/// Runs `program` twice — fast-forward on and off — with metrics enabled
/// on both, and asserts every observable is identical. Returns
/// `(cycles, ff_ticks, naive_ticks)`.
fn assert_differential(cfg: &SimConfig, program: &Program, limit: u64) -> (u64, u64, u64) {
    assert_differential_with(cfg, program, limit, |_| {})
}

/// [`assert_differential`] with a setup hook applied to both simulators
/// before running (fault schedules, watchdog thresholds, …).
fn assert_differential_with(
    cfg: &SimConfig,
    program: &Program,
    limit: u64,
    setup: impl Fn(&mut Simulator),
) -> (u64, u64, u64) {
    let mut ff = Simulator::new(cfg.clone(), program.clone()).expect("config valid");
    ff.set_fast_forward(true);
    ff.enable_metrics();
    setup(&mut ff);
    let mut naive = Simulator::new(cfg.clone(), program.clone()).expect("config valid");
    naive.set_fast_forward(false);
    naive.enable_metrics();
    setup(&mut naive);

    let ff_result = ff.run(limit);
    let naive_result = naive.run(limit);
    match (&ff_result, &naive_result) {
        (Ok(a), Ok(b)) => {
            let a_json = serde_json::to_string(a).expect("summary serializes");
            let b_json = serde_json::to_string(b).expect("summary serializes");
            assert_eq!(a_json, b_json, "RunSummary JSON must be byte-identical");
        }
        (Err(SimError::Livelock(a)), Err(SimError::Livelock(b))) => {
            // The watchdog must fire at the identical cycle with the
            // identical trigger and statistics on both loops.
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "livelock reports must be identical"
            );
        }
        (Err(_), Err(_)) => {
            // Both hit the cycle limit; the partial stats must still agree.
        }
        (a, b) => panic!("outcome diverged: ff={a:?} naive={b:?}"),
    }
    let a_sum = ff.summary();
    let b_sum = naive.summary();
    assert_eq!(
        serde_json::to_string(&a_sum).unwrap(),
        serde_json::to_string(&b_sum).unwrap(),
        "post-run summaries must match"
    );
    assert_eq!(ff.csb_stats(), naive.csb_stats(), "CsbStats must match");
    assert_eq!(
        ff.metrics_snapshot(),
        naive.metrics_snapshot(),
        "metrics snapshots must match"
    );
    (a_sum.cycles, ff.ticks(), naive.ticks())
}

// ---------------------------------------------------------------------
// Figure-style points, all schemes.
// ---------------------------------------------------------------------

#[test]
fn differential_bandwidth_workloads_all_schemes() {
    let base = SimConfig::default();
    let configs: Vec<(&str, SimConfig)> = vec![
        ("base", base.clone()),
        ("comb16", base.clone().combining_block(16)),
        ("r10k", {
            let mut c = base.clone();
            c.uncached = UncachedConfig::r10000(c.line());
            c
        }),
        ("ppc620", {
            let mut c = base.clone();
            c.uncached = UncachedConfig::ppc620();
            c
        }),
        ("double-buffered", base.clone().csb_double_buffered()),
        (
            "loaded-split-bus",
            base.clone()
                .bus(BusConfig::split(8).background(0.4, 64).build().unwrap())
                .frequency_ratio(3),
        ),
    ];
    for (name, cfg) in configs {
        for path in [workloads::StorePath::Uncached, workloads::StorePath::Csb] {
            let program = workloads::store_bandwidth(256, &cfg, path).unwrap();
            let (cycles, ff_ticks, naive_ticks) = assert_differential(&cfg, &program, 50_000_000);
            assert_eq!(
                naive_ticks, cycles,
                "naive loop ticks every cycle ({name}, {path:?})"
            );
            assert!(
                ff_ticks <= naive_ticks,
                "fast-forward never ticks more ({name}, {path:?})"
            );
        }
    }
}

#[test]
fn differential_lock_latency_hit_and_miss() {
    let cfg = SimConfig::default();
    for dwords in [2usize, 8] {
        for warm in [true, false] {
            let program = workloads::lock_sequence(dwords).unwrap();
            // `assert_differential` cannot warm/evict, so replicate inline.
            let mut ff = Simulator::new(cfg.clone(), program.clone()).unwrap();
            let mut naive = Simulator::new(cfg.clone(), program).unwrap();
            naive.set_fast_forward(false);
            for sim in [&mut ff, &mut naive] {
                sim.enable_metrics();
                let lock = csb_isa::Addr::new(csb_core::LOCK_ADDR);
                if warm {
                    sim.warm_line(lock);
                } else {
                    sim.evict_line(lock);
                }
            }
            let a = ff.run(50_000_000).unwrap();
            let b = naive.run(50_000_000).unwrap();
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap()
            );
            assert_eq!(ff.metrics_snapshot(), naive.metrics_snapshot());
        }
    }
}

/// The figure entry points themselves produce identical values either way
/// (they build their own simulators, so this exercises the process-wide
/// default toggle).
#[test]
fn figure_points_identical_via_default_toggle() {
    let cfg = SimConfig::default();
    let on_bw = bandwidth_point(&cfg, 256, Scheme::Csb).unwrap();
    let on_lat = fig5::latency_point(&cfg, 4, Scheme::Csb, LockResidency::Miss).unwrap();
    csb_core::set_default_fast_forward(false);
    let off_bw = bandwidth_point(&cfg, 256, Scheme::Csb).unwrap();
    let off_lat = fig5::latency_point(&cfg, 4, Scheme::Csb, LockResidency::Miss).unwrap();
    csb_core::set_default_fast_forward(true);
    assert_eq!(on_bw.to_bits(), off_bw.to_bits());
    assert_eq!(on_lat, off_lat);
}

// ---------------------------------------------------------------------
// Multi-process scheduling.
// ---------------------------------------------------------------------

#[test]
fn differential_multiproc_policies() {
    let cfg = SimConfig::default();
    let policies = [
        SwitchPolicy::Fixed(60),
        SwitchPolicy::Fixed(100_000),
        SwitchPolicy::Backoff { base: 6, max: 4096 },
    ];
    for policy in policies {
        let programs = vec![
            workloads::csb_worker(3, 8, 0, &cfg).unwrap(),
            workloads::csb_worker(3, 8, 1, &cfg).unwrap(),
        ];
        let mut ff = MultiSim::new(cfg.clone(), programs.clone(), policy).unwrap();
        ff.set_fast_forward(true);
        let mut naive = MultiSim::new(cfg.clone(), programs, policy).unwrap();
        naive.set_fast_forward(false);
        let a = ff.run(10_000_000).unwrap();
        let b = naive.run(10_000_000).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "MultiSummary diverged under {policy:?}"
        );
    }
}

#[test]
fn differential_multiproc_livelock() {
    // Pathological 6-cycle slices livelock to the cycle limit; the limit
    // must be hit at the identical cycle either way.
    let cfg = SimConfig::default();
    let programs = vec![
        workloads::csb_worker(1, 8, 0, &cfg).unwrap(),
        workloads::csb_worker(1, 8, 1, &cfg).unwrap(),
    ];
    let mut ff = MultiSim::new(cfg.clone(), programs.clone(), SwitchPolicy::Fixed(6)).unwrap();
    ff.set_fast_forward(true);
    let mut naive = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(6)).unwrap();
    naive.set_fast_forward(false);
    assert!(ff.run(300_000).is_err());
    assert!(naive.run(300_000).is_err());
    assert_eq!(
        serde_json::to_string(&ff.simulator().summary()).unwrap(),
        serde_json::to_string(&naive.simulator().summary()).unwrap()
    );
}

// ---------------------------------------------------------------------
// Tracing: fast-forward stays active and the walk synthesizes the events
// the naive loop would have emitted, so the exported streams match.
// ---------------------------------------------------------------------

#[test]
fn tracing_composes_with_fast_forward_and_matches_naive() {
    let cfg = SimConfig::default();
    for transfer in [512usize, 2048] {
        let program =
            workloads::store_bandwidth(transfer, &cfg, workloads::StorePath::Csb).unwrap();
        let mut ff = Simulator::new(cfg.clone(), program.clone()).unwrap();
        ff.set_fast_forward(true);
        ff.enable_tracing();
        let mut naive = Simulator::new(cfg.clone(), program).unwrap();
        naive.set_fast_forward(false);
        naive.enable_tracing();
        let a = ff.run(50_000_000).unwrap();
        let b = naive.run(50_000_000).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert_eq!(
            ff.chrome_trace(),
            naive.chrome_trace(),
            "trace streams must be byte-identical ({transfer} B)"
        );
        // Tracing no longer forfeits the event-driven loop: the traced
        // run really jumps while emitting the same stream.
        assert!(
            ff.ticks() < a.cycles,
            "traced fast-forward run must still skip cycles \
             (ticked {} of {}, {transfer} B)",
            ff.ticks(),
            a.cycles
        );
    }
}

// ---------------------------------------------------------------------
// The point of it all: idle gaps cost O(1) ticks.
// ---------------------------------------------------------------------

#[test]
fn idle_gap_advances_in_constant_ticks() {
    // Figure 5(b)-style point: a lock miss pays a ~100-cycle memory round
    // trip and the uncached stores wait out bus transactions at ratio 6 —
    // nearly all cycles are provably inert.
    let cfg = SimConfig::default();
    let program = workloads::lock_sequence(8).unwrap();
    let mut sim = Simulator::new(cfg, program).unwrap();
    // Explicit (not via the process-wide default: a parallel test toggles
    // that global).
    sim.set_fast_forward(true);
    sim.evict_line(csb_isa::Addr::new(csb_core::LOCK_ADDR));
    let s = sim.run(50_000_000).unwrap();
    assert!(
        sim.ticks() * 2 < s.cycles,
        "fast-forward must skip most of the {} cycles (ticked {})",
        s.cycles,
        sim.ticks()
    );
}

#[test]
fn post_halt_drain_is_skipped() {
    // One uncached store, then halt: the drain is a single bus transaction
    // many CPU cycles long; fast-forward jumps straight to the issue slot.
    let cfg = SimConfig::default();
    let program = workloads::store_bandwidth(8, &cfg, workloads::StorePath::Uncached).unwrap();
    let mut sim = Simulator::new(cfg, program).unwrap();
    sim.set_fast_forward(true);
    let s = sim.run(50_000_000).unwrap();
    assert!(
        sim.ticks() < s.cycles,
        "drain gap must be skipped ({} ticks for {} cycles)",
        sim.ticks(),
        s.cycles
    );
}

// ---------------------------------------------------------------------
// Active-bus drain walks: the bus stays occupied for thousands of cycles
// and the walk must bulk-apply every transaction cycle-exactly.
// ---------------------------------------------------------------------

#[test]
fn differential_sustained_uncached_store_stream() {
    // 4 KB of back-to-back uncached stores: the buffer is full nearly the
    // whole run and every jump crosses live bus occupancy.
    for ratio in [1u64, 6, 12] {
        let cfg = SimConfig::default().frequency_ratio(ratio);
        let program =
            workloads::store_bandwidth(4096, &cfg, workloads::StorePath::Uncached).unwrap();
        let (cycles, ff_ticks, naive_ticks) = assert_differential(&cfg, &program, 50_000_000);
        assert_eq!(naive_ticks, cycles, "naive loop ticks every cycle");
        assert!(ff_ticks <= naive_ticks);
    }
}

#[test]
fn differential_csb_flush_storm() {
    // Back-to-back full-line CSB bursts, inline and out-of-line retry
    // layouts, single- and double-buffered: sustained store/flush/drain
    // traffic with the CPU mostly waiting on CSB capacity.
    for double in [false, true] {
        let mut cfg = SimConfig::default().frequency_ratio(8);
        if double {
            cfg = cfg.csb_double_buffered();
        }
        for path in [workloads::StorePath::Csb, workloads::StorePath::CsbOutlined] {
            let program = workloads::store_bandwidth(2048, &cfg, path).unwrap();
            let (cycles, ff_ticks, naive_ticks) = assert_differential(&cfg, &program, 50_000_000);
            assert_eq!(naive_ticks, cycles, "naive loop ticks every cycle");
            assert!(ff_ticks <= naive_ticks, "({double}, {path:?})");
        }
    }
}

#[test]
fn differential_nic_messaging_both_send_paths() {
    // The attached NI ingests deliveries and stamps its obs events from
    // the bus-transaction timeline, so the delivered-message log, NI
    // counters, and the full Chrome trace must be byte-identical on the
    // naive and fast-forward loops — for the beat-dribbling lock path and
    // the burst-per-message CSB path alike.
    let cfg = SimConfig::default();
    let spec = workloads::MessagingSpec {
        count: 8,
        payload_dwords: 3,
        sender: 2,
        slots: 2,
    };
    let policy = workloads::RetryPolicy::NaiveSpin;
    let cases = [
        (
            workloads::lock_messages(spec, policy, &cfg).unwrap(),
            csb_core::UNCACHED_BASE,
        ),
        (
            workloads::csb_messages(spec, policy, &cfg).unwrap(),
            csb_core::COMBINING_BASE,
        ),
    ];
    for (program, base) in cases {
        let run = |fast_forward: bool| {
            let mut sim = Simulator::new(cfg.clone(), program.clone()).unwrap();
            sim.attach_nic(
                csb_nic::NicConfig {
                    slot_size: cfg.line(),
                    slots: 2,
                    ..csb_nic::NicConfig::default()
                },
                csb_isa::Addr::new(base),
            )
            .unwrap();
            sim.set_fast_forward(fast_forward);
            sim.enable_tracing();
            sim.run(50_000_000).unwrap();
            sim
        };
        let ff = run(true);
        let naive = run(false);
        assert_eq!(
            ff.chrome_trace(),
            naive.chrome_trace(),
            "trace export (NIC events included) must be byte-identical"
        );
        let nic_ff = ff.nic().unwrap();
        let nic_naive = naive.nic().unwrap();
        assert_eq!(nic_ff.stats(), nic_naive.stats(), "NI counters must match");
        assert_eq!(
            serde_json::to_string(&nic_ff.messages().to_vec()).unwrap(),
            serde_json::to_string(&nic_naive.messages().to_vec()).unwrap(),
            "delivered-message logs must be byte-identical"
        );
        assert_eq!(nic_ff.stats().messages, spec.count as u64);
        assert_eq!(nic_ff.stats().torn_frames, 0);
    }
}

#[test]
fn csb_active_phase_is_transaction_granular() {
    // The throughput bench's CSB-active shape: the bus is busy nearly end
    // to end, yet the walk must make real ticks scale with the CPU's own
    // work (a handful per line), not with the simulated cycle count.
    let spec = csb_core::experiments::throughput::csb_active_point();
    let csb_core::experiments::runner::PointWork::Bandwidth {
        transfer, scheme, ..
    } = spec.work
    else {
        panic!("csb-active point is a bandwidth point");
    };
    assert_eq!(scheme, Scheme::CsbOutlined);
    let program =
        workloads::store_bandwidth(transfer, &spec.cfg, workloads::StorePath::CsbOutlined).unwrap();
    let (cycles, ff_ticks, naive_ticks) = assert_differential(&spec.cfg, &program, 50_000_000);
    assert_eq!(naive_ticks, cycles);
    assert!(cycles >= 10_000, "point stays long ({cycles} cycles)");
    assert!(
        ff_ticks * 4 < cycles,
        "active-bus walk must skip most cycles (ticked {ff_ticks} of {cycles})"
    );
}

#[test]
fn differential_nack_retry_storm_and_watchdog_parity() {
    // A 100% device-NACK schedule turns the drain into an endless
    // reissue loop: the slot-per-carry walk must reproduce it exactly,
    // and the hard-stall watchdog must fire at the identical cycle on
    // both loops.
    let cfg = SimConfig::default();
    let program = workloads::store_bandwidth(64, &cfg, workloads::StorePath::Uncached).unwrap();
    let (_, ff_ticks, naive_ticks) = assert_differential_with(&cfg, &program, 5_000_000, |sim| {
        sim.set_faults(Some(FaultConfig::new(7).device_nack_rate(1.0)));
        sim.set_watchdog(WatchdogConfig {
            stall_cycles: 2_000,
            futile_flushes: 0,
        });
    });
    assert!(
        ff_ticks < naive_ticks,
        "the NACK storm must be fast-forwarded ({ff_ticks} vs {naive_ticks} ticks)"
    );
}

#[test]
fn differential_multiproc_slicing_over_active_bus() {
    // Slice boundaries clamp the walk mid-drain; the clamp must stay
    // cycle-exact while bursts are being bulk-applied.
    let cfg = SimConfig::default().frequency_ratio(8);
    for policy in [SwitchPolicy::Fixed(40), SwitchPolicy::Fixed(137)] {
        let programs = vec![
            workloads::store_bandwidth(512, &cfg, workloads::StorePath::CsbOutlined).unwrap(),
            workloads::store_bandwidth(512, &cfg, workloads::StorePath::Uncached).unwrap(),
        ];
        let mut ff = MultiSim::new(cfg.clone(), programs.clone(), policy).unwrap();
        ff.set_fast_forward(true);
        let mut naive = MultiSim::new(cfg.clone(), programs, policy).unwrap();
        naive.set_fast_forward(false);
        let a = ff.run(10_000_000).unwrap();
        let b = naive.run(10_000_000).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "MultiSummary diverged under {policy:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized active-bus storms: bulk transfers through every store
    /// path, under random bus shapes and nonzero fault rates, must match
    /// the naive loop on every observable (fault counters included —
    /// the walk replays the schedule ordinal-for-ordinal).
    #[test]
    fn differential_active_bus_under_faults(
        seed in any::<u64>(),
        kb in 1usize..=4,
        ratio in 1u64..=12,
        rate_pct in 0u32..40,
        path_idx in 0usize..3,
        split in any::<bool>(),
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let bus = if split {
            BusConfig::split(8).max_burst(64).build().unwrap()
        } else {
            BusConfig::multiplexed(8).max_burst(64).build().unwrap()
        };
        let cfg = SimConfig::default().bus(bus).frequency_ratio(ratio);
        let path = [
            workloads::StorePath::Uncached,
            workloads::StorePath::Csb,
            workloads::StorePath::CsbOutlined,
        ][path_idx];
        let program = workloads::store_bandwidth(kb * 1024, &cfg, path).unwrap();
        let (_, ff_ticks, naive_ticks) =
            assert_differential_with(&cfg, &program, 50_000_000, |sim| {
                sim.set_faults(Some(
                    FaultConfig::new(seed)
                        .bus_error_rate(rate * 0.5)
                        .device_nack_rate(rate)
                        .flush_disturb_rate(rate * 0.5)
                        .max_consecutive(8),
                ));
            });
        prop_assert!(ff_ticks <= naive_ticks);
    }
}

// ---------------------------------------------------------------------
// Randomized programs and configurations.
// ---------------------------------------------------------------------

proptest! {
    /// Random mixed workloads (cached + uncached + combining + membar)
    /// over random machine shapes: the two loops must agree bit-for-bit.
    #[test]
    fn differential_random_programs(
        seed in 0u64..1_000_000,
        ops in 30usize..120,
        mem_percent in 20u8..80,
        ratio in 1u64..8,
        block_log in 3u32..7,
    ) {
        let cfg = SimConfig::default()
            .frequency_ratio(ratio)
            .combining_block(1usize << block_log);
        let mix = workloads::RandomMix { ops, mem_percent };
        let program = workloads::random_mixed(seed, mix, &cfg).unwrap();
        let (cycles, ff_ticks, naive_ticks) =
            assert_differential(&cfg, &program, 50_000_000);
        prop_assert_eq!(naive_ticks, cycles);
        prop_assert!(ff_ticks <= naive_ticks);
    }

    /// A queue of random points through ONE warm-reset simulator
    /// ([`Simulator::reset_with`]) must match fresh construction
    /// point-for-point, byte-for-byte — the invariant the sweep engine's
    /// per-worker simulator reuse rests on. Machine shape, program, and
    /// queue length all vary, so every reset crosses a config change.
    #[test]
    fn warm_reuse_matches_fresh_construction(
        points in proptest::collection::vec(
            (0u64..1_000_000, 30usize..120, 20u8..80, 1u64..8, 3u32..7),
            2..5,
        ),
    ) {
        let mut slot: Option<Simulator> = None;
        for (seed, ops, mem_percent, ratio, block_log) in points {
            let cfg = SimConfig::default()
                .frequency_ratio(ratio)
                .combining_block(1usize << block_log);
            let mix = workloads::RandomMix { ops, mem_percent };
            let program = workloads::random_mixed(seed, mix, &cfg).unwrap();
            match slot.as_mut() {
                Some(sim) => sim.reset_with(cfg.clone(), program.clone()).unwrap(),
                None => slot = Some(Simulator::new(cfg.clone(), program.clone()).unwrap()),
            }
            let warm = slot.as_mut().unwrap();
            let mut fresh = Simulator::new(cfg, program).unwrap();
            match (warm.run(50_000_000), fresh.run(50_000_000)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    serde_json::to_string(&a).unwrap(),
                    serde_json::to_string(&b).unwrap(),
                    "warm-reset RunSummary JSON must be byte-identical to fresh"
                ),
                (Err(_), Err(_)) => {} // both hit the limit; compare partial state below
                (a, b) => panic!("outcome diverged: warm={a:?} fresh={b:?}"),
            }
            prop_assert_eq!(
                serde_json::to_string(&warm.summary()).unwrap(),
                serde_json::to_string(&fresh.summary()).unwrap()
            );
            prop_assert_eq!(warm.csb_stats(), fresh.csb_stats());
        }
    }

    /// Hardware-combining rules have deferred-mutation subtleties
    /// (`closed` entries); stress them specifically.
    #[test]
    fn differential_random_programs_hw_combining(
        seed in 0u64..1_000_000,
        r10k in any::<bool>(),
    ) {
        let mut cfg = SimConfig::default();
        cfg.uncached = if r10k {
            UncachedConfig::r10000(cfg.line())
        } else {
            UncachedConfig::ppc620()
        };
        let mix = workloads::RandomMix { ops: 80, mem_percent: 70 };
        let program = workloads::random_mixed(seed, mix, &cfg).unwrap();
        assert_differential(&cfg, &program, 50_000_000);
    }
}
