//! Property-based tests (proptest) on the core invariants.

use csb_bus::{BusConfig, SystemBus, Transaction};
use csb_core::{workloads, SimConfig, Simulator, COMBINING_BASE};
use csb_isa::Addr;
use csb_uncached::{
    decompose, ByteMask, ConditionalStoreBuffer, CsbConfig, FlushOutcome, UncachedBuffer,
    UncachedConfig,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Burst decomposition.
// ---------------------------------------------------------------------

proptest! {
    /// Decomposition covers exactly the set bytes, with naturally aligned
    /// power-of-two chunks that the bus accepts verbatim.
    #[test]
    fn decompose_exact_aligned_and_bus_legal(bits in any::<u64>(), cap_log in 3u32..=6) {
        let cap = 1usize << cap_log; // 8..=64
        let mut mask = ByteMask::empty();
        for i in 0..64 {
            if bits >> i & 1 == 1 {
                mask.set_range(i, 1);
            }
        }
        let chunks = decompose(mask, cap);
        let mut rebuilt = ByteMask::empty();
        let mut bus = SystemBus::new(
            BusConfig::multiplexed(8).max_burst(cap.max(8)).build().unwrap(),
        );
        let mut now = 0;
        for c in &chunks {
            prop_assert!(c.size.is_power_of_two());
            prop_assert!(c.size <= cap);
            prop_assert_eq!(c.offset % c.size, 0);
            prop_assert!(mask.covers(c.offset, c.size));
            rebuilt.set_range(c.offset, c.size);
            // The bus must accept every chunk as naturally aligned.
            now = bus.earliest_start(now);
            let issued = bus
                .try_issue(now, Transaction::write(Addr::new(0x1000 + c.offset as u64), c.size));
            prop_assert!(issued.is_ok());
            now += 1;
        }
        prop_assert_eq!(rebuilt, mask);
        // Coverage is disjoint: total chunk bytes == mask population.
        let total: usize = chunks.iter().map(|c| c.size).sum();
        prop_assert_eq!(total, mask.count());
    }

    /// Chunks are maximal-greedy: no two adjacent chunks could merge into a
    /// legal larger chunk.
    #[test]
    fn decompose_chunks_cannot_merge(bits in any::<u64>()) {
        let mut mask = ByteMask::empty();
        for i in 0..64 {
            if bits >> i & 1 == 1 {
                mask.set_range(i, 1);
            }
        }
        let chunks = decompose(mask, 64);
        for w in chunks.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a.offset + a.size == b.offset && a.size == b.size {
                let merged = a.size * 2;
                // If the merge were aligned it would have been taken.
                prop_assert!(a.offset % merged != 0);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Uncached buffer: order and content preservation.
// ---------------------------------------------------------------------

proptest! {
    /// Any sequence of doubleword stores drained through the buffer yields
    /// a last-write-wins image identical to executing them directly, for
    /// every combining block size.
    #[test]
    fn uncached_buffer_preserves_memory_image(
        offsets in proptest::collection::vec(0u64..32, 1..20),
        block_log in 3u32..=6,
    ) {
        let block = 1usize << block_log;
        let mut buf = UncachedBuffer::new(UncachedConfig { capacity: 64, ..UncachedConfig::with_block(block) }).unwrap();
        let mut reference = vec![0u8; 32 * 8];
        for (n, &slot) in offsets.iter().enumerate() {
            let value = (n as u64 + 1) * 0x0101_0101_0101_0101;
            let addr = Addr::new(0x1000 + slot * 8);
            buf.push_store(addr, &value.to_le_bytes());
            reference[slot as usize * 8..slot as usize * 8 + 8]
                .copy_from_slice(&value.to_le_bytes());
        }
        let mut image = vec![0u8; 32 * 8];
        while let Some(pt) = buf.peek_transaction() {
            let start = (pt.txn.addr.raw() - 0x1000) as usize;
            image[start..start + pt.txn.size].copy_from_slice(&pt.data);
            buf.transaction_accepted();
        }
        prop_assert!(buf.is_drained());
        // Bytes ever stored must match; untouched bytes are zero in both.
        prop_assert_eq!(image, reference);
    }
}

// ---------------------------------------------------------------------
// CSB: conflict detection and atomicity.
// ---------------------------------------------------------------------

proptest! {
    /// A flush succeeds iff (line, pid, count) all match what the buffer
    /// accumulated without interference.
    #[test]
    fn csb_flush_success_iff_uninterrupted(
        n in 1usize..=8,
        expected in 0u64..=10,
        intruder in proptest::bool::ANY,
        wrong_line in proptest::bool::ANY,
    ) {
        let mut csb = ConditionalStoreBuffer::new(CsbConfig::new(64)).unwrap();
        let line = Addr::new(0x2000);
        for i in 0..n {
            csb.store(1, line.offset(8 * i as i64), &(i as u64).to_le_bytes()).unwrap();
        }
        if intruder {
            // A competing process's store clears the buffer.
            csb.store(2, line, &7u64.to_le_bytes()).unwrap();
        }
        let flush_addr = if wrong_line { Addr::new(0x4000) } else { line };
        let out = csb.conditional_flush(1, flush_addr, expected);
        let should_succeed = !intruder && !wrong_line && expected == n as u64;
        prop_assert_eq!(out == FlushOutcome::Success, should_succeed);
        // Failure must clear: a following flush with any parameters fails.
        if !should_succeed {
            prop_assert_eq!(csb.conditional_flush(1, line, expected), FlushOutcome::Fail);
        }
    }

    /// Whatever subset of a line is stored, a successful flush emits one
    /// full-line burst whose payload equals the stored byte count and whose
    /// padding is zero.
    #[test]
    fn csb_burst_payload_and_padding(slots in proptest::collection::vec(0i64..8, 1..=8)) {
        let mut csb = ConditionalStoreBuffer::new(CsbConfig::new(64)).unwrap();
        let line = Addr::new(0x2000);
        let mut touched = [false; 8];
        for &s in &slots {
            csb.store(1, line.offset(8 * s), &0xffff_ffff_ffff_ffffu64.to_le_bytes()).unwrap();
            touched[s as usize] = true;
        }
        let out = csb.conditional_flush(1, line, slots.len() as u64);
        prop_assert_eq!(out, FlushOutcome::Success);
        let pt = csb.transaction_accepted();
        prop_assert_eq!(pt.txn.size, 64);
        let expected_payload = touched.iter().filter(|&&t| t).count() * 8;
        prop_assert_eq!(pt.txn.payload, expected_payload);
        for (i, &t) in touched.iter().enumerate() {
            let chunk = &pt.data[8 * i..8 * i + 8];
            if t {
                prop_assert!(chunk.iter().all(|&b| b == 0xff));
            } else {
                prop_assert!(chunk.iter().all(|&b| b == 0), "padding must be zeroed");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Full-simulator properties (fewer cases; each runs a whole machine).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A CSB sequence of any legal length commits exactly once with the
    /// right payload, whatever the ratio.
    #[test]
    fn simulated_csb_commits_exactly_once(n in 1usize..=8, ratio in 2u64..=10) {
        let cfg = SimConfig::default().frequency_ratio(ratio);
        let program = workloads::csb_sequence(n, &cfg).unwrap();
        let mut sim = Simulator::new(cfg, program).unwrap();
        let s = sim.run(10_000_000).unwrap();
        prop_assert_eq!(s.csb.flush_successes, 1);
        prop_assert_eq!(s.bus.transactions, 1);
        prop_assert_eq!(s.bus.payload_bytes, 8 * n as u64);
        prop_assert_eq!(sim.device().len(), 1);
        prop_assert_eq!(sim.device().writes()[0].addr, Addr::new(COMBINING_BASE));
    }

    /// CSB store bandwidth is non-decreasing in the transfer size on the
    /// default machine (the full-line burst cost amortizes).
    #[test]
    fn csb_bandwidth_monotone(step in 1usize..=6) {
        let cfg = SimConfig::default();
        let small = 16usize << (step - 1);
        let large = 16usize << step;
        let bw_small = csb_core::experiments::bandwidth_point(
            &cfg, small, csb_core::experiments::Scheme::Csb).unwrap();
        let bw_large = csb_core::experiments::bandwidth_point(
            &cfg, large, csb_core::experiments::Scheme::Csb).unwrap();
        prop_assert!(bw_large + 1e-9 >= bw_small,
            "CSB bandwidth fell from {bw_small} ({small}B) to {bw_large} ({large}B)");
    }

    /// Exactly-once under random slicing: with two processes retrying CSB
    /// sequences, the device sees exactly one burst per successful flush
    /// and every burst is internally uniform.
    #[test]
    fn sliced_processes_stay_atomic(slice in 30u64..200) {
        let cfg = SimConfig::default();
        let programs = vec![
            workloads::csb_worker(3, 8, 0, &cfg).unwrap(),
            workloads::csb_worker(3, 8, 1, &cfg).unwrap(),
        ];
        let mut ms = csb_core::multiproc::MultiSim::new(
            cfg, programs, csb_core::multiproc::SwitchPolicy::Fixed(slice)).unwrap();
        let s = ms.run(50_000_000).unwrap();
        prop_assert_eq!(s.flush_successes, 6);
        prop_assert_eq!(ms.simulator().device().len(), 6);
    }
}

// ---------------------------------------------------------------------
// Bus invariants under random traffic.
// ---------------------------------------------------------------------

proptest! {
    /// However transactions are offered, the bus never overlaps them, honors
    /// the turnaround and address-delay windows, and its statistics add up.
    #[test]
    fn bus_never_overlaps_and_stats_add_up(
        sizes in proptest::collection::vec(0u32..4, 1..40),
        turnaround in 0u64..2,
        delay in prop_oneof![Just(0u64), Just(4), Just(8)],
        jitter in proptest::collection::vec(0u64..5, 1..40),
    ) {
        let cfg = BusConfig::multiplexed(8)
            .max_burst(64)
            .turnaround(turnaround)
            .min_addr_delay(delay)
            .build()
            .unwrap();
        let mut bus = SystemBus::new(cfg);
        bus.enable_log();
        let mut now = 0u64;
        for (i, (&sz, &j)) in sizes.iter().zip(jitter.iter().cycle()).enumerate() {
            let size = 8usize << sz; // 8..64
            let addr = Addr::new((i as u64) * 64); // always naturally aligned
            now = bus.earliest_start(now) + j;
            now = bus.earliest_start(now);
            let issued = bus
                .try_issue(now, Transaction::write(addr, size))
                .unwrap()
                .expect("earliest_start said this cycle is free");
            now = issued.completes_at + 1;
        }
        let log = bus.log().to_vec();
        for w in log.windows(2) {
            prop_assert!(
                w[1].addr_cycle > w[0].completes_at + turnaround
                    || w[1].addr_cycle >= w[0].completes_at + 1 + turnaround,
                "transactions overlap or violate turnaround: {w:?}"
            );
            prop_assert!(
                w[1].addr_cycle >= w[0].addr_cycle + delay,
                "address spacing violated: {w:?}"
            );
        }
        let stats = bus.stats();
        let total: u64 = log.iter().map(|e| e.completes_at - e.addr_cycle + 1).sum();
        prop_assert_eq!(stats.busy_cycles, total);
        prop_assert_eq!(stats.transactions as usize, log.len());
        let bytes: u64 = log.iter().map(|e| e.size as u64).sum();
        prop_assert_eq!(stats.bytes_on_bus, bytes);
    }

    /// The background-traffic arbiter converges to its configured
    /// utilization over a long uniform stream.
    #[test]
    fn background_utilization_converges(percent in 10u32..=60) {
        let u = percent as f64 / 100.0;
        let cfg = BusConfig::multiplexed(8)
            .max_burst(64)
            .background(u, 8)
            .build()
            .unwrap();
        let mut bus = SystemBus::new(cfg);
        let mut now = 0u64;
        for i in 0..400u64 {
            now = bus.earliest_start(now);
            let issued = bus
                .try_issue(now, Transaction::write(Addr::new(i * 8), 8))
                .unwrap()
                .unwrap();
            now = issued.completes_at + 1;
        }
        let s = bus.stats();
        let total = s.busy_cycles + s.foreign_cycles;
        let measured = s.foreign_cycles as f64 / total as f64;
        prop_assert!(
            (measured - u).abs() < 0.05,
            "asked {u}, measured {measured}"
        );
    }
}
