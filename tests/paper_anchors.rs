//! Quantitative anchors quoted in the paper's text (§4.3), asserted
//! end-to-end against the full simulator. Absolute constants are matched
//! within tolerances; shapes (slopes, orderings, crossovers) exactly.

use csb_bus::BusConfig;
use csb_core::experiments::{bandwidth_point, fig5, Scheme};
use csb_core::SimConfig;

/// "The effective bus bandwidth is 4 bytes per bus cycle, which is half of
/// the peak bandwidth" — non-combining doubleword stores, 8-byte
/// multiplexed bus, independent of the total amount of data.
#[test]
fn anchor_non_combining_4_bytes_per_cycle() {
    let cfg = SimConfig::default();
    for transfer in [16usize, 64, 256, 1024] {
        let bw = bandwidth_point(&cfg, transfer, Scheme::Uncached { block: 8 }).unwrap();
        assert!(
            (bw - 4.0).abs() < 0.1,
            "{transfer}B: expected ~4 B/cycle, got {bw}"
        );
    }
}

/// "A doubleword transaction takes 2 cycles, two consecutive transactions
/// take 5 cycles, three transactions take 8 cycles" — with a turnaround
/// cycle, N non-combined transactions span 3N-1 bus cycles.
#[test]
fn anchor_turnaround_3n_minus_1() {
    let cfg = SimConfig::default().bus(
        BusConfig::multiplexed(8)
            .turnaround(1)
            .max_burst(64)
            .build()
            .unwrap(),
    );
    for n in [2usize, 3, 4, 8] {
        let bw = bandwidth_point(&cfg, 8 * n, Scheme::Uncached { block: 8 }).unwrap();
        let expected = (8 * n) as f64 / (3 * n - 1) as f64;
        assert!(
            (bw - expected).abs() < 0.05,
            "{n} transactions: expected {expected}, got {bw}"
        );
    }
}

/// "Larger data transfers benefit increasingly from combining, ultimately
/// approaching the peak bandwidth" — full-line combining at 1 KiB gets
/// close to the 64B-per-9-cycles peak of the multiplexed bus.
#[test]
fn anchor_combining_approaches_peak() {
    let cfg = SimConfig::default();
    let peak = 64.0 / 9.0;
    let bw = bandwidth_point(&cfg, 1024, Scheme::Uncached { block: 64 }).unwrap();
    assert!(bw > 0.8 * peak, "expected near {peak}, got {bw}");
    let csb = bandwidth_point(&cfg, 1024, Scheme::Csb).unwrap();
    assert!(csb > 0.85 * peak, "CSB expected near {peak}, got {csb}");
}

/// "The conditional store buffer clearly has the greatest advantage over
/// all other schemes for transfer sizes of about a cache line", while
/// "transfers that are significantly smaller than a cache line are
/// penalized by the unnecessary long burst".
#[test]
fn anchor_csb_crossover_around_a_line() {
    let cfg = SimConfig::default();
    let schemes: Vec<Scheme> = Scheme::ladder(64);
    // At one line, CSB is the best scheme.
    let at_line: Vec<f64> = schemes
        .iter()
        .map(|&s| bandwidth_point(&cfg, 64, s).unwrap())
        .collect();
    let csb = *at_line.last().unwrap();
    for (i, &bw) in at_line.iter().enumerate().take(at_line.len() - 1) {
        assert!(csb >= bw, "CSB {csb} must beat scheme {i} ({bw}) at 64B");
    }
    // At 16 bytes, CSB is worse than non-combining.
    let none_16 = bandwidth_point(&cfg, 16, Scheme::Uncached { block: 8 }).unwrap();
    let csb_16 = bandwidth_point(&cfg, 16, Scheme::Csb).unwrap();
    assert!(csb_16 < none_16, "small transfers pay the full-line burst");
    // And the penalty is exactly a 64B burst carrying 16 payload bytes.
    assert!((csb_16 - 16.0 / 9.0).abs() < 0.05, "got {csb_16}");
}

/// "Increasing the cache line size pushes the crossover point between the
/// CSB and other schemes towards larger transfers."
#[test]
fn anchor_crossover_moves_with_line_size() {
    let crossover = |line: usize| -> usize {
        let cfg = SimConfig::default().line_size(line);
        for &t in &[16usize, 32, 64, 128, 256, 512, 1024] {
            let none = bandwidth_point(&cfg, t, Scheme::Uncached { block: 8 }).unwrap();
            let csb = bandwidth_point(&cfg, t, Scheme::Csb).unwrap();
            if csb >= none {
                return t;
            }
        }
        usize::MAX
    };
    let c32 = crossover(32);
    let c128 = crossover(128);
    assert!(
        c32 < c128,
        "crossover must move right with line size: 32B line at {c32}, 128B line at {c128}"
    );
}

/// "The net overhead of locking and unlocking is 8 cycles even when the
/// lock access hits in the L1 cache, and 137 cycles for a miss. The cache
/// miss latency is 100 cycles." We assert the miss-hit difference is the
/// miss latency give or take pipeline effects, and that the hit overhead
/// is small (single digits to low tens).
#[test]
fn anchor_lock_overhead_hit_vs_miss() {
    let cfg = SimConfig::default();
    let hit = fig5::latency_point(
        &cfg,
        2,
        Scheme::Uncached { block: 8 },
        fig5::LockResidency::Hit,
    )
    .unwrap();
    let miss = fig5::latency_point(
        &cfg,
        2,
        Scheme::Uncached { block: 8 },
        fig5::LockResidency::Miss,
    )
    .unwrap();
    assert!(
        (85..=130).contains(&(miss - hit)),
        "miss adds ~100 cycles: hit {hit}, miss {miss}"
    );
    // Paper: 28..100 cycles for 2..8 dwords with locking. Same ballpark.
    assert!(
        (20..=60).contains(&hit),
        "2-dword locked sequence: got {hit}"
    );
}

/// "Latency increases by 12 cycles for every doubleword transferred"
/// (locking, ratio 6) vs. "Latency increases by 1 cycle for each
/// transferred doubleword" (CSB).
#[test]
fn anchor_latency_slopes() {
    let cfg = SimConfig::default();
    let lock: Vec<u64> = (2..=8)
        .map(|d| {
            fig5::latency_point(
                &cfg,
                d,
                Scheme::Uncached { block: 8 },
                fig5::LockResidency::Hit,
            )
            .unwrap()
        })
        .collect();
    let csb: Vec<u64> = (2..=8)
        .map(|d| fig5::latency_point(&cfg, d, Scheme::Csb, fig5::LockResidency::Hit).unwrap())
        .collect();
    let lock_slope = (lock[6] - lock[0]) as f64 / 6.0;
    let csb_slope = (csb[6] - csb[0]) as f64 / 6.0;
    assert!(
        (10.0..=14.0).contains(&lock_slope),
        "locking slope ~12 cycles/dword, got {lock_slope} ({lock:?})"
    );
    assert!(
        (0.5..=2.5).contains(&csb_slope),
        "CSB slope ~1 cycle/dword, got {csb_slope} ({csb:?})"
    );
    // The CSB sequence is much cheaper in absolute terms, too.
    assert!(csb[6] * 3 < lock[6], "CSB {} vs lock {}", csb[6], lock[6]);
}

/// "Experiments with a 2-way and 8-way superscalar CPU did not change the
/// lock overhead at all, because of the short data and control
/// dependencies."
#[test]
fn anchor_lock_overhead_width_insensitive() {
    let rows = csb_core::experiments::ablations::superscalar_widths(4).unwrap();
    let four = rows.iter().find(|r| r.width == 4).unwrap().lock_cycles;
    for r in &rows {
        assert!(
            r.lock_cycles.abs_diff(four) * 5 <= four,
            "width {} lock latency {} deviates >20% from {}",
            r.width,
            r.lock_cycles,
            four
        );
    }
}

/// "The bus alignment restrictions lead to better bus utilization when
/// going from 7 to 8 transactions" — with full-line combining, 8 dwords
/// (one burst) complete no later than 7 dwords (three bursts).
#[test]
fn anchor_seven_vs_eight_dwords() {
    let cfg = SimConfig::default();
    let c7 = fig5::latency_point(
        &cfg,
        7,
        Scheme::Uncached { block: 64 },
        fig5::LockResidency::Hit,
    )
    .unwrap();
    let c8 = fig5::latency_point(
        &cfg,
        8,
        Scheme::Uncached { block: 64 },
        fig5::LockResidency::Hit,
    )
    .unwrap();
    assert!(c8 <= c7, "8 dwords ({c8}) must not exceed 7 dwords ({c7})");
}

/// Figures 3(h)/(i): a minimum address-to-address delay throttles short
/// transactions to `8 bytes / delay` while a full-line burst (9 cycles on
/// the multiplexed bus) hides a 4-cycle acknowledgment completely.
#[test]
fn anchor_ack_delay_throttles_singles_only() {
    let delay4 = SimConfig::default().bus(
        BusConfig::multiplexed(8)
            .min_addr_delay(4)
            .max_burst(64)
            .build()
            .unwrap(),
    );
    let none = bandwidth_point(&delay4, 1024, Scheme::Uncached { block: 8 }).unwrap();
    assert!((none - 2.0).abs() < 0.1, "8B per 4 cycles, got {none}");
    let csb = bandwidth_point(&delay4, 1024, Scheme::Csb).unwrap();
    assert!(csb > 6.0, "bursts hide the 4-cycle ack, got {csb}");

    let delay8 = SimConfig::default().bus(
        BusConfig::multiplexed(8)
            .min_addr_delay(8)
            .max_burst(64)
            .build()
            .unwrap(),
    );
    let none8 = bandwidth_point(&delay8, 1024, Scheme::Uncached { block: 8 }).unwrap();
    assert!((none8 - 1.0).abs() < 0.1, "8B per 8 cycles, got {none8}");
}
