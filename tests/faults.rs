//! Integration tests for the deterministic fault-injection layer: seeded
//! schedules must be invisible at rate zero, identical across worker
//! counts and simulation loops, and hostile schedules must end in a
//! structured [`SimError::Livelock`] — never a hang or a bare timeout.
//!
//! The zero-fault *default* path (no injector installed at all) is pinned
//! separately by `tests/golden.rs`: those snapshots predate this layer,
//! so their passing is the proof that an absent schedule changes nothing.

use csb_core::experiments::runner::parallel_map;
use csb_core::multiproc::{MultiSim, SwitchPolicy};
use csb_core::workloads::{self, RetryPolicy};
use csb_core::{FaultConfig, LivelockTrigger, SimConfig, SimError, Simulator};
use proptest::prelude::*;

/// One seeded fault point: dwords through the CSB under `policy` with a
/// mixed schedule. Returns a string capturing every observable — run
/// outcome, post-run summary JSON, and the injector's counters — so
/// differential tests can compare byte-for-byte.
fn run_point(seed: u64, dwords: usize, rate: f64, policy: RetryPolicy) -> String {
    let cfg = SimConfig::default();
    let program = workloads::csb_sequence_with_policy(dwords, policy, &cfg).expect("valid program");
    let mut sim = Simulator::new(cfg, program).expect("valid machine");
    sim.set_faults(Some(
        FaultConfig::new(seed)
            .flush_disturb_rate(rate)
            .bus_error_rate(rate * 0.25)
            .device_nack_rate(rate * 0.25)
            .max_consecutive(8),
    ));
    let outcome = match sim.run(2_000_000) {
        Ok(s) => format!("ok:{}", serde_json::to_string(&s).unwrap()),
        Err(SimError::Livelock(r)) => format!("livelock@{}:{:?}", r.cycle, r.trigger),
        Err(e) => panic!("unexpected simulation error: {e}"),
    };
    format!(
        "{outcome}|{}|{:?}",
        serde_json::to_string(&sim.summary()).unwrap(),
        sim.fault_stats(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seeded schedule produces byte-identical results on 1 worker
    /// and 4: fault decisions are keyed on per-kind ordinals, not on
    /// scheduling order, so the parallel experiment engine cannot
    /// perturb them.
    #[test]
    fn jobs_one_and_four_are_byte_identical(
        seed in any::<u64>(),
        rate_pct in 0u32..95,
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let points: Vec<(u64, usize, RetryPolicy)> = (0..6u64)
            .map(|i| {
                let policy = match i % 3 {
                    0 => RetryPolicy::NaiveSpin,
                    1 => RetryPolicy::Bounded { attempts: 4 },
                    _ => RetryPolicy::Backoff {
                        attempts: 8,
                        base: 16,
                        max: 512,
                        seed: seed ^ i,
                    },
                };
                (seed.wrapping_add(i.wrapping_mul(0x9e37_79b9)), 1 + (i as usize % 8), policy)
            })
            .collect();
        let serial = parallel_map(&points, 1, |&(s, d, p)| run_point(s, d, rate, p));
        let fanned = parallel_map(&points, 4, |&(s, d, p)| run_point(s, d, rate, p));
        prop_assert_eq!(serial, fanned);
    }

    /// A schedule with every rate at zero is indistinguishable from no
    /// schedule at all, whatever the seed: the injector burns no
    /// entropy, alters no timing, and the `RunSummary` JSON is
    /// byte-identical.
    #[test]
    fn zero_rate_schedule_is_invisible(seed in any::<u64>(), dwords in 1usize..=8) {
        let cfg = SimConfig::default();
        let program = workloads::csb_sequence(dwords, &cfg).expect("valid program");
        let mut plain = Simulator::new(cfg.clone(), program.clone()).expect("valid machine");
        let mut faulted = Simulator::new(cfg, program).expect("valid machine");
        faulted.set_faults(Some(FaultConfig::new(seed)));
        let a = plain.run(2_000_000).expect("completes");
        let b = faulted.run(2_000_000).expect("completes");
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        prop_assert_eq!(faulted.fault_stats().total_injected(), 0);
    }

    /// Fast-forward must stay invisible under an *active* schedule: the
    /// naive loop and the event-driven loop agree on every observable,
    /// including the injector's own counters.
    #[test]
    fn fast_forward_differential_under_faults(
        seed in any::<u64>(),
        rate_pct in 5u32..95,
        dwords in 1usize..=8,
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let run = |ff: bool| {
            let cfg = SimConfig::default();
            let program = workloads::csb_sequence_with_policy(
                dwords,
                RetryPolicy::Bounded { attempts: 6 },
                &cfg,
            )
            .expect("valid program");
            let mut sim = Simulator::new(cfg, program).expect("valid machine");
            sim.set_fast_forward(ff);
            sim.set_faults(Some(
                FaultConfig::new(seed)
                    .flush_disturb_rate(rate)
                    .bus_error_rate(rate * 0.25)
                    .device_nack_rate(rate * 0.25)
                    .max_consecutive(8),
            ));
            let outcome = match sim.run(2_000_000) {
                Ok(s) => format!("ok:{}", serde_json::to_string(&s).unwrap()),
                Err(SimError::Livelock(r)) => format!("livelock@{}:{:?}", r.cycle, r.trigger),
                Err(e) => panic!("unexpected simulation error: {e}"),
            };
            (
                outcome,
                serde_json::to_string(&sim.summary()).unwrap(),
                format!("{:?}", sim.fault_stats()),
            )
        };
        prop_assert_eq!(run(true), run(false));
    }
}

/// The paper's §3.2 livelock, reproduced deliberately: two processes
/// ping-pong CSB disturbances under a pathological 6-cycle scheduler
/// slice, so no conditional flush ever succeeds. The watchdog must end
/// the run with a structured [`SimError::Livelock`] — not a cycle-limit
/// timeout — at the identical cycle on both simulation loops.
#[test]
fn two_processor_disturbance_loop_livelocks_on_both_paths() {
    let cfg = SimConfig::default();
    let mut reports = Vec::new();
    for ff in [true, false] {
        let programs = vec![
            workloads::csb_worker(1, 8, 0, &cfg).unwrap(),
            workloads::csb_worker(1, 8, 1, &cfg).unwrap(),
        ];
        let mut ms = MultiSim::new(cfg.clone(), programs, SwitchPolicy::Fixed(6)).unwrap();
        ms.set_fast_forward(ff);
        let Err(SimError::Livelock(r)) = ms.run(10_000_000) else {
            panic!("pathological slicing must livelock (ff={ff})");
        };
        assert_eq!(r.trigger, LivelockTrigger::FlushFutility, "ff={ff}");
        assert_eq!(r.actors.len(), 2, "one entry per process (ff={ff})");
        assert!(r.actors.iter().all(|a| !a.halted), "nobody finished");
        assert_eq!(r.csb.flush_successes, 0, "no flush ever succeeded");
        reports.push((r.cycle, r.consecutive_flush_failures, r.retired));
    }
    assert_eq!(
        reports[0], reports[1],
        "both loops must fire the watchdog at the same cycle"
    );
}

/// A device that NACKs every delivery hard-stalls the machine:
/// instructions stop retiring and the bus makes no progress, so the
/// stall trigger fires after exactly `stall_cycles` quiet cycles.
#[test]
fn total_nack_schedule_trips_the_hard_stall_watchdog() {
    let cfg = SimConfig::default();
    let program =
        workloads::store_bandwidth(8, &cfg, workloads::StorePath::Uncached).expect("valid program");
    let mut sim = Simulator::new(cfg, program).expect("valid machine");
    sim.set_faults(Some(FaultConfig::new(99).device_nack_rate(1.0)));
    let Err(SimError::Livelock(r)) = sim.run(10_000_000) else {
        panic!("an always-NACKing device must hard-stall");
    };
    assert_eq!(r.trigger, LivelockTrigger::HardStall);
    assert_eq!(r.no_progress_for, sim.watchdog().stall_cycles);
    assert!(r.injected_faults > 0, "the NACKs must be on the report");
}
