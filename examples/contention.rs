//! Contention study: competing processes, conflicts, livelock, and backoff.
//!
//! The CSB is optimistic: no lock is ever taken, and a process interrupted
//! mid-sequence simply fails its conditional flush and retries (§3.2). This
//! example time-slices one core between processes that all use the CSB and
//! shows:
//!
//! * long slices → no conflicts at all,
//! * realistic slices → occasional failed flushes, full progress,
//! * pathological slices (shorter than a sequence) → the theoretical
//!   livelock the paper mentions,
//! * exponential backoff → recovery from that livelock.
//!
//! Run with: `cargo run --example contention`

use csb_core::multiproc::{MultiSim, SwitchPolicy};
use csb_core::{workloads, SimConfig, SimError};

fn workers(cfg: &SimConfig, n: usize, iterations: usize) -> Vec<csb_isa::Program> {
    (0..n)
        .map(|i| workloads::csb_worker(iterations, 8, i, cfg).expect("valid worker"))
        .collect()
}

fn report(label: &str, policy: SwitchPolicy, n: usize, iterations: usize) {
    let cfg = SimConfig::default();
    let mut ms =
        MultiSim::new(cfg.clone(), workers(&cfg, n, iterations), policy).expect("valid machine");
    match ms.run(3_000_000) {
        Ok(s) => {
            let expected = (n * iterations) as u64;
            println!(
                "{label:<28} {:>8} cycles, {:>4} switches, {:>3} conflicts (failed flushes), {}/{} sequences",
                s.cycles, s.switches, s.flush_failures, s.flush_successes, expected
            );
        }
        Err(SimError::CycleLimit { limit }) => {
            println!("{label:<28} LIVELOCK: no progress within {limit} cycles");
        }
        Err(e) => println!("{label:<28} error: {e}"),
    }
}

fn main() {
    let (n, iterations) = (3, 5);
    println!(
        "{n} processes x {iterations} CSB sequences of 8 doublewords each, one core, time-sliced\n"
    );
    report(
        "slice 10000 (generous)",
        SwitchPolicy::Fixed(10_000),
        n,
        iterations,
    );
    report("slice 100 (tight)", SwitchPolicy::Fixed(100), n, iterations);
    report(
        "slice 45 (adversarial)",
        SwitchPolicy::Fixed(45),
        n,
        iterations,
    );
    report(
        "slice 6 (pathological)",
        SwitchPolicy::Fixed(6),
        n,
        iterations,
    );
    report(
        "slice 6 + backoff",
        SwitchPolicy::Backoff { base: 6, max: 4096 },
        n,
        iterations,
    );
    println!();
    println!("A failed flush costs only the software retry — no process ever blocks,");
    println!("no priority inversion, no deadlock; and exponential backoff resolves");
    println!("the (contrived) livelock, as §3.2 argues.");
}
