//! Visualize what each combining scheme actually puts on the bus.
//!
//! Renders cycle-by-cycle bus timelines for a 64-byte store burst under
//! the non-combining buffer, full-line hardware combining, the R10000
//! sequential detector, and the CSB. Legend: `A` address cycle, `D` data
//! cycle, `.` idle.
//!
//! The timelines come from the unified trace layer
//! (`Simulator::enable_tracing` + `trace::timeline_from_events`), the
//! same stream the `--trace-out` Perfetto export reads — the legacy
//! `enable_bus_log` path draws identical lanes but sees only the bus.
//!
//! Run with: `cargo run --example bus_trace`

use csb_core::{trace, workloads, SimConfig, Simulator};
use csb_obs::{TraceEvent, Track};
use csb_uncached::UncachedConfig;

fn run_traced(cfg: SimConfig, label: &str) {
    let ratio = cfg.ratio;
    let program =
        workloads::store_bandwidth(64, &cfg, workloads::StorePath::Uncached).expect("valid size");
    let mut sim = Simulator::new(cfg, program).expect("valid machine");
    sim.enable_tracing();
    let s = sim.run(1_000_000).expect("run completes");
    show(label, &sim.trace_events(), ratio, s.bus.transactions);
}

fn show(label: &str, events: &[TraceEvent], ratio: u64, txns: u64) {
    // Bus spans are stamped in CPU cycles (pre-scaled by the ratio); the
    // last occupied bus cycle bounds the window.
    let last = events
        .iter()
        .filter(|e| matches!(e.track, Track::Bus | Track::Foreign))
        .map(|e| ((e.cycle + e.dur) / ratio).saturating_sub(1))
        .max()
        .unwrap_or(0);
    let window = trace::timeline_from_events(events, 0, last, ratio);
    let busy = window.lane.chars().filter(|&c| c != '.').count();
    let t = trace::timeline_from_events(events, 0, last.max(20), ratio);
    println!(
        "{label}  ({txns} transactions, {:.0}% occupied)",
        busy as f64 / window.lane.len() as f64 * 100.0
    );
    println!("{}\n", t.render());
}

fn main() {
    println!("one cache line (8 doubleword stores) through each scheme\n");

    run_traced(
        SimConfig::default().combining_block(8),
        "non-combining      ",
    );
    run_traced(
        SimConfig::default().combining_block(16),
        "16B combining      ",
    );
    run_traced(
        SimConfig::default().combining_block(64),
        "full-line combining",
    );
    let r10k = SimConfig {
        uncached: UncachedConfig::r10000(64),
        ..SimConfig::default()
    };
    run_traced(r10k, "R10000 accelerated ");

    // The CSB path: stores park in the CSB (no bus activity at all) until
    // the conditional flush commits the whole line as one burst.
    let cfg = SimConfig::default();
    let ratio = cfg.ratio;
    let program =
        workloads::store_bandwidth(64, &cfg, workloads::StorePath::Csb).expect("valid size");
    let mut sim = Simulator::new(cfg, program).expect("valid machine");
    sim.enable_tracing();
    sim.cpu_mut().enable_trace();
    let s = sim.run(1_000_000).expect("run completes");
    show(
        "conditional store buffer",
        &sim.trace_events(),
        ratio,
        s.bus.transactions,
    );

    // And the CPU-side view of the same sequence: the combining stores
    // retire one per cycle; the conditional flush executes at the ROB head.
    println!(
        "pipeline view of the CSB sequence (F fetch, D dispatch, I issue, C complete, R retire):
"
    );
    let end = sim.cpu().now().min(40);
    println!("{}", csb_cpu::trace::render(sim.cpu().trace(), 0, end));

    println!("The first store always leaves the buffer alone (the bus is idle when it");
    println!("arrives); hardware combining only wins once the bus backs up. The CSB");
    println!("waits for software's flush and issues exactly one 9-cycle line burst.");
}
