//! Fine-grain message passing over the Machine-attached network interface.
//!
//! The paper's motivation (§2, §5): cluster communication performance is
//! dominated by per-message overhead, and messages are short (19–230 bytes
//! in the Mukherjee & Hill study). NIs like Atoll and HP Medusa expose a
//! doorbell/FIFO window written with programmed I/O; what limits send-side
//! throughput is how cheaply the CPU can push a descriptor plus payload
//! into that window *atomically* (multiple processes share the NI).
//!
//! This example attaches the [`csb_nic::Nic`] device to the simulated
//! machine's I/O window — so the NI itself assembles sequence-numbered
//! frames from whatever bus traffic the sender produces — and pushes a
//! stream of small messages through three send paths:
//!
//! 1. lock + uncached stores + membar + unlock (conventional, §4.2),
//! 2. the CSB: combining stores + one conditional flush (no lock at all),
//! 3. the CSB with the variable-burst extension (§3.2).
//!
//! Per path it reports CPU cycles per message plus the receive side's own
//! accounting: messages delivered, torn frames, and the mean end-to-end
//! latency from first header store on the bus to wire arrival.
//!
//! Run with: `cargo run --example message_passing`

use csb_core::workloads::{self, MessagingSpec, RetryPolicy};
use csb_core::{SimConfig, Simulator};
use csb_core::{COMBINING_BASE, LOCK_ADDR, UNCACHED_BASE};
use csb_isa::Addr;

/// Messages per run.
const COUNT: usize = 64;

/// NI window slots the senders cycle through.
const SLOTS: usize = 8;

fn run(cfg: &SimConfig, spec: MessagingSpec, csb_path: bool, label: &str) -> u64 {
    let program = if csb_path {
        workloads::csb_messages(spec, RetryPolicy::NaiveSpin, cfg)
    } else {
        workloads::lock_messages(spec, RetryPolicy::NaiveSpin, cfg)
    }
    .expect("sender assembles");
    let mut sim = Simulator::new(cfg.clone(), program).expect("valid machine");
    // The NI watches the window the sender writes: the combining window
    // for the CSB paths, the plain uncached window for the locked path.
    let base = if csb_path {
        COMBINING_BASE
    } else {
        UNCACHED_BASE
    };
    sim.attach_nic(
        csb_nic::NicConfig {
            slot_size: cfg.line(),
            slots: SLOTS,
            ..csb_nic::NicConfig::default()
        },
        Addr::new(base),
    )
    .expect("NI window fits");
    sim.warm_line(Addr::new(LOCK_ADDR));
    let s = sim.run(100_000_000).expect("run completes");
    let cycles = s
        .cpu
        .mark_interval(workloads::MARK_START, workloads::MARK_END)
        .expect("marks present");
    let nic = sim.nic().expect("NI attached");
    let stats = *nic.stats();
    let mean_e2e = if nic.messages().is_empty() {
        0.0
    } else {
        nic.messages()
            .iter()
            .map(|m| m.device_latency())
            .sum::<u64>() as f64
            / nic.messages().len() as f64
    };
    println!(
        "{label:<22} {:>6.1} cycles/msg  delivered {:>2}/{COUNT}  torn {}  mean e2e {:>5.1} cycles",
        cycles as f64 / COUNT as f64,
        stats.messages,
        stats.torn_frames,
        mean_e2e,
    );
    assert_eq!(stats.messages, COUNT as u64, "{label}: every message lands");
    assert_eq!(stats.torn_frames, 0, "{label}: nothing torn without faults");
    cycles
}

fn main() {
    let cfg = SimConfig::default();
    println!("sending {COUNT} messages (8B header + payload) through the attached NI\n");

    for payload_dwords in [1usize, 3, 7] {
        let bytes = 8 * (1 + payload_dwords);
        let spec = MessagingSpec {
            count: COUNT,
            payload_dwords,
            sender: 1,
            slots: SLOTS,
        };
        println!("--- {bytes}-byte messages ---");
        let locked = run(&cfg, spec, false, "lock/store/unlock");
        let csb = run(&cfg, spec, true, "CSB (full-line)");
        let vb_cfg = cfg.clone().csb_variable_burst();
        let csb_vb = run(&vb_cfg, spec, true, "CSB (variable-burst)");
        println!(
            "speedup vs locking: CSB {:.1}x, variable-burst {:.1}x\n",
            locked as f64 / csb as f64,
            locked as f64 / csb_vb as f64
        );
    }
    println!("The NI's own counters make the reliability story concrete: both paths");
    println!("deliver every frame intact here, but the locked path needs the lock to");
    println!("do it — under §3.2's variable bursts the CSB also stops paying the");
    println!("full-line padding penalty on 16-byte messages, and wins outright.");
}
