//! Fine-grain message passing over a toy network interface.
//!
//! The paper's motivation (§2, §5): cluster communication performance is
//! dominated by per-message overhead, and messages are short (19–230 bytes
//! in the Mukherjee & Hill study). NIs like Atoll and HP Medusa expose a
//! doorbell/FIFO window written with programmed I/O; what limits send-side
//! throughput is how cheaply the CPU can push a descriptor plus payload
//! into that window *atomically* (multiple processes share the NI).
//!
//! This example sends a stream of small messages — an 8-byte header plus a
//! payload — through three send paths and reports per-message CPU cycles:
//!
//! 1. lock + uncached stores + membar + unlock (conventional, §4.2),
//! 2. the CSB: combining stores + one conditional flush (no lock at all),
//! 3. the CSB with the double-buffered extension.
//!
//! Run with: `cargo run --example message_passing`

use csb_core::{workloads, SimConfig, Simulator};
use csb_core::{COMBINING_BASE, LOCK_ADDR};
use csb_isa::{Addr, Assembler, Program, Reg};

/// Builds a sender that pushes `count` messages of `payload_dwords`
/// doublewords (plus a 1-dword header) into consecutive NI window lines via
/// the CSB, each committed with a conditional flush.
fn csb_sender(count: usize, payload_dwords: usize, line: usize) -> Program {
    let mut a = Assembler::new();
    a.movi(Reg::O1, COMBINING_BASE as i64);
    a.movi(Reg::L2, 0xcafe); // header template
    a.movi(Reg::L1, 0xdada); // payload template
    a.mark(workloads::MARK_START);
    for m in 0..count {
        let base = (m % 64) as i64 * line as i64;
        let dwords = 1 + payload_dwords;
        let retry = a.new_label();
        a.bind(retry).expect("fresh label");
        a.movi(Reg::L4, dwords as i64);
        a.std(Reg::L2, Reg::O1, base); // header
        for i in 0..payload_dwords {
            a.std(Reg::L1, Reg::O1, base + 8 * (i as i64 + 1));
        }
        a.swap(Reg::L4, Reg::O1, base);
        a.cmpi(Reg::L4, dwords as i64);
        a.bnz(retry);
    }
    a.mark(workloads::MARK_END);
    a.halt();
    a.assemble().expect("sender assembles")
}

/// Builds the same message stream over the conventional lock-based path.
fn locked_sender(count: usize, payload_dwords: usize) -> Program {
    let mut a = Assembler::new();
    a.movi(Reg::O0, LOCK_ADDR as i64);
    a.movi(Reg::O1, csb_core::UNCACHED_BASE as i64);
    a.movi(Reg::L2, 0xcafe);
    a.movi(Reg::L1, 0xdada);
    a.mark(workloads::MARK_START);
    for m in 0..count {
        let base = (m % 64) as i64 * 64;
        let spin = a.new_label();
        a.bind(spin).expect("fresh label");
        a.movi(Reg::L0, 1);
        a.swap(Reg::L0, Reg::O0, 0);
        a.cmpi(Reg::L0, 0);
        a.bnz(spin);
        a.membar();
        a.std(Reg::L2, Reg::O1, base);
        for i in 0..payload_dwords {
            a.std(Reg::L1, Reg::O1, base + 8 * (i as i64 + 1));
        }
        a.membar();
        a.std(Reg::G0, Reg::O0, 0); // release
    }
    a.mark(workloads::MARK_END);
    a.halt();
    a.assemble().expect("sender assembles")
}

fn run(cfg: &SimConfig, program: Program, label: &str, count: usize) -> u64 {
    let mut sim = Simulator::new(cfg.clone(), program).expect("valid machine");
    sim.warm_line(Addr::new(LOCK_ADDR));
    let s = sim.run(100_000_000).expect("run completes");
    let cycles = s
        .cpu
        .mark_interval(workloads::MARK_START, workloads::MARK_END)
        .expect("marks present");
    println!(
        "{label:<22} {:>8} cycles total  {:>6.1} cycles/message  ({} bus txns, {} flush retries)",
        cycles,
        cycles as f64 / count as f64,
        s.bus.transactions,
        s.csb.flush_failures,
    );
    cycles
}

fn main() {
    let cfg = SimConfig::default();
    let count = 64;
    println!("sending {count} messages (8B header + payload) over the NI window\n");

    for payload_dwords in [1usize, 3, 7] {
        let bytes = 8 * (1 + payload_dwords);
        println!("--- {bytes}-byte messages ---");
        let locked = run(
            &cfg,
            locked_sender(count, payload_dwords),
            "lock/store/unlock",
            count,
        );
        let csb = run(
            &cfg,
            csb_sender(count, payload_dwords, cfg.line()),
            "CSB (full-line)",
            count,
        );
        let vb_cfg = cfg.clone().csb_variable_burst();
        let csb_vb = run(
            &vb_cfg,
            csb_sender(count, payload_dwords, cfg.line()),
            "CSB (variable-burst)",
            count,
        );
        println!(
            "speedup vs locking: CSB {:.1}x, variable-burst {:.1}x\n",
            locked as f64 / csb as f64,
            locked as f64 / csb_vb as f64
        );
    }
    println!("Back-to-back small messages expose the always-full-line CSB's padding");
    println!("penalty (the bus carries a 64B burst per 16B message), which is why");
    println!("§3.2 suggests variable burst sizes where the bus supports them; at a");
    println!("full line per message, the baseline CSB already wins outright.");
}
