//! Quickstart: build the paper's default machine, send one cache line of
//! device writes through the conditional store buffer, and compare it with
//! the conventional uncached path.
//!
//! Run with: `cargo run --example quickstart`

use csb_core::{workloads, SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's baseline machine: 4-wide out-of-order core, 64-byte
    // lines, 8-byte multiplexed bus, CPU:bus frequency ratio 6.
    let cfg = SimConfig::default();
    println!(
        "machine: {} bus, {}B wide, line {}B, CPU:bus ratio {}\n",
        cfg.bus.kind(),
        cfg.bus.width(),
        cfg.line(),
        cfg.ratio
    );

    // --- Path 1: plain uncached stores (non-combining buffer). ---------
    let program = workloads::store_bandwidth(64, &cfg, workloads::StorePath::Uncached)?;
    let mut sim = Simulator::new(cfg.clone(), program)?;
    let plain = sim.run(1_000_000)?;
    println!(
        "uncached path : {:>2} bus transactions, {:>5.2} bytes/bus-cycle, {:>4} CPU cycles",
        plain.bus.transactions,
        plain.bus.effective_bandwidth(),
        plain.cycles
    );

    // --- Path 2: the conditional store buffer. --------------------------
    let program = workloads::store_bandwidth(64, &cfg, workloads::StorePath::Csb)?;
    let mut sim = Simulator::new(cfg.clone(), program)?;
    let csb = sim.run(1_000_000)?;
    println!(
        "CSB path      : {:>2} bus transaction,  {:>5.2} bytes/bus-cycle, {:>4} CPU cycles",
        csb.bus.transactions,
        csb.bus.effective_bandwidth(),
        csb.cycles
    );

    // The device saw the committed line as a single atomic burst.
    let w = &sim.device().writes()[0];
    println!(
        "\ndevice received one {}-byte burst at {} (payload {} bytes), bus cycle {}",
        w.data.len(),
        w.addr,
        w.payload,
        w.bus_cycle
    );
    println!(
        "flushes: {} succeeded, {} failed",
        csb.csb.flush_successes, csb.csb.flush_failures
    );

    assert!(csb.bus.effective_bandwidth() > plain.bus.effective_bandwidth());
    println!("\nCSB wins at one cache line, exactly as the paper's Figure 3 shows.");
    Ok(())
}
