//! PIO vs. DMA break-even analysis (the paper's §5, quantified).
//!
//! DMA pays a fixed setup cost (descriptor, doorbell, completion) and then
//! streams cache-line bursts autonomously; programmed I/O costs the CPU per
//! byte. The paper argues the CSB moves the PIO/DMA break-even point toward
//! larger messages, "potentially completely eliminating the need for DMA on
//! the send side for many applications". This example sweeps message sizes
//! and prints both send latencies for the conventional locked PIO path and
//! for CSB PIO.
//!
//! Run with: `cargo run --example pio_vs_dma`

use csb_core::dma::{DmaModel, PioMethod, MESSAGE_SIZES};
use csb_core::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::default();
    let model = DmaModel::default();
    println!(
        "DMA model: {} descriptor dwords, {}-bus-cycle start delay, {}-cycle completion\n",
        model.setup_dwords, model.start_delay_bus_cycles, model.completion_overhead
    );

    for method in [PioMethod::Locked, PioMethod::Csb] {
        let name = match method {
            PioMethod::Locked => "PIO = lock + uncached stores + unlock",
            PioMethod::Csb => "PIO = conditional store buffer",
        };
        println!("=== {name} ===");
        let (rows, crossover) = model.break_even(&cfg, method, &MESSAGE_SIZES)?;
        println!(
            "{:>8} {:>12} {:>12} {:>8}",
            "bytes", "PIO cycles", "DMA cycles", "winner"
        );
        for r in &rows {
            println!(
                "{:>8} {:>12} {:>12} {:>8}",
                r.bytes,
                r.pio_cycles,
                r.dma_cycles,
                if r.pio_cycles <= r.dma_cycles {
                    "PIO"
                } else {
                    "DMA"
                }
            );
        }
        match crossover {
            Some(b) => println!("break-even: DMA wins from {b} bytes\n"),
            None => println!("break-even: PIO wins across the whole sweep\n"),
        }
    }

    println!("The CSB pushes the crossover toward larger messages — the §5 claim.");
    Ok(())
}
